"""Sparse aggregation support: CSR matrix times dense Tensor.

BiSAGE's neighbourhood aggregation (Eq. 8) over a whole layer is a
row-stochastic sparse matrix applied to the previous layer's embedding
matrix.  The sparse operand encodes sampled, weight-normalised
neighbourhoods and is *not* differentiated; gradients flow only to the
dense embeddings (``dX = A^T @ dY``).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.nn.tensor import Tensor, as_tensor

__all__ = ["spmm", "row_normalized_csr"]


def spmm(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Multiply a constant sparse ``matrix`` (n, m) by dense ``x`` (m, d)."""
    if not sp.issparse(matrix):
        raise TypeError("spmm expects a scipy sparse matrix as first operand")
    x = as_tensor(x)
    csr = matrix.tocsr()
    out_data = csr @ x.data

    def backward(grad):
        if x.requires_grad:
            x._accumulate(csr.T @ grad)

    return Tensor._make(out_data, (x,), backward)


def row_normalized_csr(rows, cols, weights, shape) -> sp.csr_matrix:
    """Build a CSR matrix whose non-empty rows sum to one.

    Encodes the weighted-mean aggregator of Eq. 8: entry (i, j) is the
    normalised edge weight with which neighbour ``j`` contributes to the
    aggregate at node ``i``.  Rows with no entries stay all-zero (their
    aggregate is the zero vector).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if not (rows.shape == cols.shape == weights.shape):
        raise ValueError("rows, cols and weights must have matching shapes")
    if weights.size and weights.min() < 0:
        raise ValueError("aggregation weights must be non-negative")
    matrix = sp.csr_matrix((weights, (rows, cols)), shape=shape)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.divide(1.0, row_sums, out=np.zeros_like(row_sums), where=row_sums > 0)
    return sp.diags(scale) @ matrix
