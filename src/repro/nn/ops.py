"""Functional operations on :class:`~repro.nn.tensor.Tensor`.

Activations, numerically-stable log-likelihood helpers, concatenation,
row gathering and row-wise L2 normalisation — everything BiSAGE's
forward pass (Eq. 3–7) and loss (Eq. 9) need.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "concat",
    "exp",
    "gather_rows",
    "l2_normalize_rows",
    "log",
    "log_sigmoid",
    "relu",
    "row_dot",
    "sigmoid",
    "softplus",
    "stack_rows",
    "tanh",
    "mse_loss",
]


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic function with a numerically stable forward."""
    x = as_tensor(x)
    data = x.data
    out_data = np.where(data >= 0, 1.0 / (1.0 + np.exp(-np.clip(data, 0, None))),
                        np.exp(np.clip(data, None, 0)) / (1.0 + np.exp(np.clip(data, None, 0))))

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.maximum(x.data, 0.0)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * (x.data > 0))

    return Tensor._make(out_data, (x,), backward)


def exp(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.exp(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * out_data)

    return Tensor._make(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.log(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad / x.data)

    return Tensor._make(out_data, (x,), backward)


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))`` computed stably."""
    x = as_tensor(x)
    data = x.data
    out_data = np.maximum(data, 0.0) + np.log1p(np.exp(-np.abs(data)))

    def backward(grad):
        if x.requires_grad:
            sig = np.where(data >= 0, 1.0 / (1.0 + np.exp(-np.clip(data, 0, None))),
                           np.exp(np.clip(data, None, 0)) / (1.0 + np.exp(np.clip(data, None, 0))))
            x._accumulate(grad * sig)

    return Tensor._make(out_data, (x,), backward)


def log_sigmoid(x: Tensor) -> Tensor:
    """``log(sigmoid(x)) = -softplus(-x)``, stable for large |x|."""
    return -softplus(-as_tensor(x))


def concat(tensors, axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (CONCAT in Eq. 4/6)."""
    tensors = [as_tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack_rows(tensors) -> Tensor:
    """Stack equal-shape tensors as rows of a new matrix."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=0)

    def backward(grad):
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(grad[i])

    return Tensor._make(out_data, tuple(tensors), backward)


def gather_rows(x: Tensor, indices) -> Tensor:
    """Select rows ``x[indices]`` with scatter-add gradient.

    ``indices`` may repeat; the gradient is accumulated back into each
    selected row (the embedding-lookup primitive).
    """
    x = as_tensor(x)
    idx = np.asarray(indices, dtype=np.int64)
    out_data = x.data[idx]

    def backward(grad):
        if x.requires_grad:
            full = np.zeros_like(x.data)
            np.add.at(full, idx, grad)
            x._accumulate(full)

    return Tensor._make(out_data, (x,), backward)


def row_dot(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise inner product of two (n, d) tensors -> (n,) tensor."""
    a, b = as_tensor(a), as_tensor(b)
    return (a * b).sum(axis=-1)


def l2_normalize_rows(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Normalise each row to unit L2 norm (Eq. 7).

    Zero rows are left at (near) zero rather than producing NaNs.
    """
    x = as_tensor(x)
    norms = ((x * x).sum(axis=-1, keepdims=True) + eps) ** 0.5
    return x / norms


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error between ``prediction`` and a constant target."""
    prediction = as_tensor(prediction)
    target = as_tensor(target).detach()
    diff = prediction - target
    return (diff * diff).mean()
