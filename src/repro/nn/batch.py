"""Fused inference kernels for the vectorized batch data plane.

A :class:`SageInferenceKernel` is the hoisted, allocation-lean form of
the per-record inductive embedding step shared by BiSAGE and GraphSAGE
(``_embed_from_neighbors``): the constant inference-node initial row,
the per-layer weight matrices and the live neighbour cache lists are
captured once per batch (or cached across batches by
:class:`repro.serve.batchplane.BatchPlane`) instead of being re-derived
record by record.

Bit-identity contract
---------------------
Every operation here must reproduce the scalar path's floats **bit for
bit** — the differential harness (``tests/test_batch_differential.py``)
enforces it.  Two consequences shape the implementation:

* The K aggregation layers stay *per record*.  Batched dense matmuls
  are not an option: on this substrate the rows of a GEMM ``X @ W``
  differ in the last ulp from the per-row GEMV ``x @ W`` (and differ
  again across batch sizes), so one fused ``(B, 2d) @ W`` would break
  both scalar-vs-vectorized identity and batch-size-1-vs-N identity.
  The gathers, weighted means and GEMVs below are exactly the scalar
  ops on exactly the scalar operands.
* The concat buffer is a layout trick only: filling a preallocated
  ``(2d,)`` buffer with the same values ``np.concatenate`` would
  produce feeds the identical contiguous operand to the identical
  GEMV, so the result is unchanged while the per-layer allocation is
  not.

What the kernel *does* save per record: four ``initial_embedding_row``
recomputations (the inference key is constant, so the rows are too),
the dead auxiliary stream (BiSAGE's scalar path updates ``l`` each
layer but the returned primary ``h`` never reads it), attribute-chain
lookups, and one concat allocation per layer.  The big batch win —
scoring the whole batch through the detector once — lives in
:meth:`repro.detection.histogram.HistogramDetector.score_batch`.

The kernel holds the neighbour cache *lists* by reference.  Mid-batch
``_extend_mac_cache`` calls rebind the model's lists to longer arrays,
but extension only appends rows for MACs past the aggregation boundary
— never usable as neighbours until a refresh rebuilds the caches, at
which point the owner's token check discards this kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SageInferenceKernel"]


class SageInferenceKernel:
    """One record-side inference step, prepared for batch replay.

    Parameters
    ----------
    initial:
        The shared inference-node initial embedding row ``(d,)`` (the
        ``_INFERENCE_KEY`` row — constant across all streamed records).
    weights:
        Per-layer dense weight matrices ``(2d, d)`` (raw arrays, not
        Parameters).
    neighbor_caches:
        The live list of per-layer neighbour cache arrays the scalar
        path gathers from (BiSAGE: the auxiliary MAC caches
        ``_cache_lv``; GraphSAGE: ``_cache_v``), held by reference.
    act:
        The numpy activation function (the scalar path's exact one).
    macs_aggregated / mac_admitted:
        The aggregation-universe filter state, snapshotted — both only
        change on a cache rebuild, which invalidates the kernel.
    """

    def __init__(self, initial: np.ndarray, weights: list[np.ndarray],
                 neighbor_caches: list[np.ndarray], act,
                 macs_aggregated: int, mac_admitted: np.ndarray | None):
        self.initial = np.asarray(initial, dtype=np.float64)
        self.weights = list(weights)
        if not self.weights:
            raise ValueError("SageInferenceKernel needs at least one layer")
        self.neighbor_caches = neighbor_caches
        self.act = act
        self.macs_aggregated = int(macs_aggregated)
        self.mac_admitted = mac_admitted
        self._dim = self.initial.shape[0]
        self._buf = np.empty(2 * self._dim, dtype=np.float64)

    def embed(self, neighbors: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Embedding row for one attached record — the scalar math, hoisted."""
        if len(neighbors):
            usable = neighbors < self.macs_aggregated
            if self.mac_admitted is not None:
                known = neighbors < len(self.mac_admitted)
                extra = np.zeros(len(neighbors), dtype=bool)
                extra[known] = self.mac_admitted[neighbors[known]]
                usable |= extra
            neighbors, weights = neighbors[usable], weights[usable]
        if len(neighbors) == 0:
            return self.initial.copy()
        probabilities = weights / weights.sum()
        act = self.act
        caches = self.neighbor_caches
        buf = self._buf
        dim = self._dim
        z = self.initial
        for k, w in enumerate(self.weights):
            agg = probabilities @ caches[k][neighbors]
            buf[:dim] = z
            buf[dim:] = agg
            z = _l2_vec(act(buf @ w))
        return z


def _l2_vec(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    # Must match the embedders' _l2_rows 1-D branch exactly (same
    # expression, same eps) — it is part of the bit-identity contract.
    return x / np.sqrt((x * x).sum() + eps)
