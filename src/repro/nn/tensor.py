"""A minimal reverse-mode automatic-differentiation engine on numpy.

The paper trains three small neural models (BiSAGE, GraphSAGE and a
1-D convolutional autoencoder).  Rather than depending on a deep-learning
framework, this module implements the required subset of reverse-mode
autodiff from scratch: a :class:`Tensor` records the operations applied
to it and :meth:`Tensor.backward` walks the tape in reverse topological
order accumulating gradients.

Only differentiable float tensors are modelled.  Integer index arrays
(for gather/scatter) are passed as plain numpy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables tape recording (inference mode)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an autodiff tape.

    Parameters
    ----------
    data:
        Array-like payload; coerced to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False, _parents=(), _backward=None):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = tuple(_parents) if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (detached view)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Autodiff machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so calling on a scalar loss computes
        ordinary gradients).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        # Reverse topological order over the tape.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic (broadcasting, scalar-friendly)
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        axes = axes or None
        out_data = self.data.transpose(*axes) if axes else self.data.T
        inverse = np.argsort(axes) if axes else None

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(*inverse) if inverse is not None else grad.T)

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod([self.data.shape[a] for a in np.atleast_1d(axis)])
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out_data, axis=axis)
            else:
                out = out_data
            mask = (self.data == out).astype(np.float64)
            # Split gradient among ties to keep the sum correct.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        shape = self.data.shape

        def backward(grad):
            if self.requires_grad:
                full = np.zeros(shape, dtype=np.float64)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce arrays/scalars into (non-grad) :class:`Tensor` instances."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
