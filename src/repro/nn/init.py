"""Parameter initialisers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["xavier_uniform", "he_uniform", "normal"]


def xavier_uniform(shape: tuple[int, ...], rng=None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for (fan_out, fan_in) weights."""
    rng = as_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """He/Kaiming uniform initialisation (for ReLU layers)."""
    rng = as_rng(rng)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple[int, ...], rng=None, std: float = 0.01) -> np.ndarray:
    """Zero-mean Gaussian initialisation."""
    rng = as_rng(rng)
    return rng.normal(0.0, std, size=shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initialiser shapes must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_out = shape[0] * receptive
    fan_in = shape[1] * receptive
    return fan_in, fan_out
