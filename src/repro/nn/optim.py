"""First-order optimisers (SGD with momentum, Adam).

The paper trains BiSAGE with a learning rate of 0.003 (Sec. V); Adam is
the conventional choice for GraphSAGE-family models and is the default
throughout the library.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter
from repro.utils.validation import check_positive

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser: holds parameters, provides zero_grad/step."""

    def __init__(self, parameters):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = check_positive(lr, "lr")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters, lr: float = 0.003, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = check_positive(lr, "lr")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = check_positive(eps, "eps")
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
