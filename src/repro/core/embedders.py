"""Adapters that expose each embedding algorithm as a RecordEmbedder.

Each Table-I pipeline is "embedder + detector"; these adapters give the
graph-based embedders (BiSAGE, GraphSAGE) their dynamic-graph plumbing
(Algorithm 2 line 1: "connect r into G") and give the matrix-based
embedders (autoencoder, MDS, raw imputed matrix) their fixed-universe
imputation, behind one interface.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.core.records import SignalRecord
from repro.embedding.autoencoder import AutoencoderConfig, ConvAutoencoder
from repro.embedding.bisage import BiSAGE, BiSAGEConfig
from repro.embedding.graphsage import GraphSAGE, GraphSAGEConfig
from repro.embedding.matrix import DEFAULT_FILL_DBM, MatrixView
from repro.embedding.mds import ClassicalMDS
from repro.graph.bipartite import RECORD, WeightedBipartiteGraph
from repro.graph.builder import build_graph

__all__ = [
    "BiSAGEEmbedder",
    "GraphSAGEEmbedder",
    "AutoencoderEmbedder",
    "MDSEmbedder",
    "ImputedMatrixEmbedder",
]


class _GraphEmbedderBase:
    """Shared graph-owning behaviour for BiSAGE/GraphSAGE adapters."""

    # The trainable model class bound to the graph; subclasses set it so
    # the shared persistence path can rebuild the right model on load.
    _model_class: type | None = None

    def __init__(self, weight_offset: float = 120.0, refresh_every: int = 0):
        if refresh_every < 0:
            raise ValueError("refresh_every must be >= 0")
        self.weight_offset = weight_offset
        self.refresh_every = refresh_every
        self.graph = None
        self.model = None
        self._observed_since_refresh = 0

    def _fit_graph(self, records: Sequence[SignalRecord]):
        if not records:
            raise ValueError("cannot fit on an empty training set")
        self.graph = build_graph(records, weight_offset=self.weight_offset)
        self._num_training_records = self.graph.num_records
        return self.graph

    def training_embeddings(self) -> np.ndarray:
        """Training-record embeddings for fitting the detector.

        Computed through the *inductive* path (the one streamed records
        take at inference) rather than read from the transductive
        training cache: the detector's histograms must describe the same
        distribution its inference-time queries come from, otherwise the
        per-node random initial embeddings of training nodes shift the
        score scale.
        """
        self._require_fitted()
        return np.vstack([self.model.embed_record_node(i)
                          for i in range(self._num_training_records)])

    def embed(self, record: SignalRecord, attach: bool = True) -> np.ndarray | None:
        """Embed a streamed record (Sec. IV-A).

        With ``attach=True`` the record joins the graph permanently
        (Algorithm 2 line 1).  Returns None when no sensed MAC is already
        known to the graph — the footnote-3 case the caller must treat as
        an outlier.
        """
        self._require_fitted()
        known = any(self.graph.mac_index(mac) is not None for mac in record.readings)
        if attach:
            index = self.graph.add_record(record)
            embedding = self.model.embed_record_node(index) if known else None
            self._observed_since_refresh += 1
            if self.refresh_every and self._observed_since_refresh >= self.refresh_every:
                # The raw auto-refresh moves the embedding function under
                # whatever detector sits downstream — the exact footgun
                # the coordinated refresh() path exists to fix.
                warnings.warn(
                    "refresh_every fired: the embedding cache was rebuilt without "
                    "refitting the downstream detector, which shifts the score "
                    "scale it was calibrated on; use the coordinated "
                    "EmbeddingGeofencer.refresh(records) (or a fleet "
                    "MaintenancePolicy) instead", DeprecationWarning, stacklevel=3)
                self.model.refresh_cache()
                self._observed_since_refresh = 0
        else:
            embedding = self.model.embed_readings(record.readings) if known else None
        return embedding

    # ------------------------------------------------------------------
    # Batched inference (vectorized data plane)
    # ------------------------------------------------------------------
    def supports_batch_inference(self) -> bool:
        """Whether the batch data plane may replay this embedder's records.

        Requires the coordinated-maintenance regime (``refresh_every ==
        0``): the deprecated auto-refresh can rebuild caches *mid-stream*
        at a record count the hoisted kernel cannot observe, so those
        configurations stay on the scalar path.
        """
        return (self.refresh_every == 0 and self.model is not None
                and hasattr(self.model, "batched_inference"))

    def batched_inference(self):
        """Build the model's hoisted inference kernel (see nn/batch.py)."""
        self._require_fitted()
        return self.model.batched_inference()

    def batch_token(self) -> tuple:
        """Kernel-validity fingerprint; changes whenever inference would."""
        self._require_fitted()
        return self.model.inference_token()

    def attach_prepared(self, record: SignalRecord):
        """Attach one record and return its ``(neighbors, weights)`` arrays.

        Exactly the graph-side half of ``embed(record, attach=True)`` —
        known-check *before* the attach (attaching interns the record's
        own MACs), permanent attach, streaming counter — with the model
        maths left to the caller's kernel.  Returns None for the
        footnote-3 case (no sensed MAC known).  Callers must have
        checked :meth:`supports_batch_inference`; the ``refresh_every``
        warning path is deliberately absent here.
        """
        self._require_fitted()
        known = any(self.graph.mac_index(mac) is not None for mac in record.readings)
        index = self.graph.add_record(record)
        self._observed_since_refresh += 1
        if not known:
            return None
        # The scalar path extends per embedded record; replicating that
        # keeps the cache arrays byte-identical in post-stream
        # state_dict() trees (their final size depends on which record
        # was embedded last, not just on the batch's MAC universe).
        self.model._extend_mac_cache()
        return self.graph.neighbors(RECORD, index)

    def refresh_cache(self, admit_new_macs_after: int | None = None) -> None:
        """Rebuild per-layer caches over the grown graph, coordinated flavour.

        Two deliberate differences from the raw ``refresh_every`` path:
        the trained aggregation universe is preserved (``admit_new_macs=
        False`` — admitting post-training MACs under weights that never
        saw them measurably collapses in/out separation), and the caller
        must refit the downstream detector on re-embedded data in the
        same operation, because every cached embedding still moves (see
        :meth:`repro.core.gem.EmbeddingGeofencer.refresh`).

        ``admit_new_macs_after=N`` relaxes the universe rule with
        support-threshold admission: a post-training MAC joins
        aggregation once at least N attached observations sense it.
        """
        self._require_fitted()
        self.model.refresh_cache(admit_new_macs=False,
                                 admit_new_macs_after=admit_new_macs_after)
        self._observed_since_refresh = 0

    def _require_fitted(self) -> None:
        if self.model is None or self.graph is None:
            raise RuntimeError(f"{type(self).__name__} has not been fitted; call fit first")

    # ------------------------------------------------------------------
    # Persistence (shared by every graph-based adapter)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: graph + model + streaming bookkeeping."""
        self._require_fitted()
        return {
            "weight_offset": self.weight_offset,
            "refresh_every": self.refresh_every,
            "observed_since_refresh": self._observed_since_refresh,
            "num_training_records": self._num_training_records,
            "graph": self.graph.state_dict(),
            "model": self.model.state_dict(),
        }

    def load_state_dict(self, state: dict):
        """Restore an embedder saved by :meth:`state_dict`."""
        self.weight_offset = float(state["weight_offset"])
        self.refresh_every = int(state["refresh_every"])
        self._observed_since_refresh = int(state["observed_since_refresh"])
        self.graph = WeightedBipartiteGraph.from_state_dict(state["graph"])
        self._num_training_records = int(state["num_training_records"])
        if self._num_training_records > self.graph.num_records:
            raise ValueError(f"state claims {self._num_training_records} training records "
                             f"but graph has only {self.graph.num_records}")
        self.model = self._model_class(self.config).load_state_dict(state["model"], self.graph)
        return self


class BiSAGEEmbedder(_GraphEmbedderBase):
    """The paper's embedder: weighted bipartite graph + BiSAGE."""

    _model_class = BiSAGE

    def __init__(self, config: BiSAGEConfig = BiSAGEConfig(),
                 weight_offset: float = 120.0, refresh_every: int = 0):
        super().__init__(weight_offset, refresh_every)
        self.config = config

    def fit(self, records: Sequence[SignalRecord]) -> "BiSAGEEmbedder":
        graph = self._fit_graph(records)
        self.model = BiSAGE(self.config).fit(graph)
        return self


class GraphSAGEEmbedder(_GraphEmbedderBase):
    """Homogeneous GraphSAGE on the same bipartite graph (Table I row)."""

    _model_class = GraphSAGE

    def __init__(self, config: GraphSAGEConfig = GraphSAGEConfig(),
                 weight_offset: float = 120.0, refresh_every: int = 0):
        super().__init__(weight_offset, refresh_every)
        self.config = config

    def fit(self, records: Sequence[SignalRecord]) -> "GraphSAGEEmbedder":
        graph = self._fit_graph(records)
        self.model = GraphSAGE(self.config).fit(graph)
        return self


class _MatrixEmbedderBase:
    """Shared imputed-matrix behaviour (Sec. III-A missing-value padding)."""

    def __init__(self, fill_value: float = DEFAULT_FILL_DBM, scale: bool = False):
        self.fill_value = fill_value
        self.scale = scale
        self.view: MatrixView | None = None
        self._training: np.ndarray | None = None

    def _fit_view(self, records: Sequence[SignalRecord]) -> np.ndarray:
        if not records:
            raise ValueError("cannot fit on an empty training set")
        self.view = MatrixView(records, fill_value=self.fill_value, scale=self.scale)
        return self.view.transform(records)

    def _vector(self, record: SignalRecord) -> np.ndarray | None:
        if self.view is None:
            raise RuntimeError(f"{type(self).__name__} has not been fitted; call fit first")
        if self.view.coverage(record) == 0.0:
            return None
        return self.view.transform_one(record)

    def training_embeddings(self) -> np.ndarray:
        if self._training is None:
            raise RuntimeError(f"{type(self).__name__} has not been fitted; call fit first")
        return self._training

    # ------------------------------------------------------------------
    # Persistence (shared plumbing; subclasses add their model state)
    # ------------------------------------------------------------------
    def _base_state(self) -> dict:
        if self.view is None or self._training is None:
            raise RuntimeError(f"cannot checkpoint an unfitted {type(self).__name__}; call fit first")
        return {
            "fill_value": self.fill_value,
            "scale": self.scale,
            "view": self.view.state_dict(),
            "training": self._training.copy(),
        }

    def _load_base(self, state: dict) -> None:
        self.fill_value = float(state["fill_value"])
        self.scale = bool(state["scale"])
        self.view = MatrixView.from_state_dict(state["view"])
        training = np.asarray(state["training"], dtype=np.float64)
        if training.ndim != 2:
            raise ValueError(f"training embeddings must be 2-D, got shape {training.shape}")
        self._training = training


class AutoencoderEmbedder(_MatrixEmbedderBase):
    """1-D conv autoencoder over the imputed matrix (Table I row)."""

    def __init__(self, config: AutoencoderConfig = AutoencoderConfig(),
                 fill_value: float = DEFAULT_FILL_DBM):
        super().__init__(fill_value, scale=True)
        self.config = config
        self.model: ConvAutoencoder | None = None

    def fit(self, records: Sequence[SignalRecord]) -> "AutoencoderEmbedder":
        x = self._fit_view(records)
        self.model = ConvAutoencoder(x.shape[1], self.config).fit(x)
        self._training = self.model.embed(x)
        return self

    def embed(self, record: SignalRecord, attach: bool = True) -> np.ndarray | None:
        vector = self._vector(record)
        if vector is None:
            return None
        return self.model.embed(vector[None, :])[0]

    def state_dict(self) -> dict:
        """Checkpointable state: imputation view + trained autoencoder."""
        state = self._base_state()
        state["config"] = self.config.to_dict()
        state["model"] = self.model.state_dict()
        return state

    def load_state_dict(self, state: dict) -> "AutoencoderEmbedder":
        """Restore an embedder saved by :meth:`state_dict`."""
        saved_cfg = AutoencoderConfig.from_dict(state["config"])
        if saved_cfg != self.config:
            raise ValueError("checkpoint config does not match this embedder's config; "
                             f"saved {saved_cfg}, constructed with {self.config}")
        model = ConvAutoencoder.from_state_dict(state["model"])
        self._load_base(state)
        self.model = model
        return self


class MDSEmbedder(_MatrixEmbedderBase):
    """Classical MDS on 1-cosine distances of imputed vectors (Table I row)."""

    def __init__(self, dim: int = 32, fill_value: float = DEFAULT_FILL_DBM):
        super().__init__(fill_value, scale=False)
        self.dim = dim
        self.model: ClassicalMDS | None = None

    def fit(self, records: Sequence[SignalRecord]) -> "MDSEmbedder":
        x = self._fit_view(records)
        self.model = ClassicalMDS(dim=self.dim).fit(x)
        self._training = self.model.embedding_
        return self

    def embed(self, record: SignalRecord, attach: bool = True) -> np.ndarray | None:
        vector = self._vector(record)
        if vector is None:
            return None
        return self.model.transform(vector[None, :])[0]

    def state_dict(self) -> dict:
        """Checkpointable state: imputation view + fitted MDS decomposition."""
        state = self._base_state()
        state["dim"] = self.dim
        state["model"] = self.model.state_dict()
        return state

    def load_state_dict(self, state: dict) -> "MDSEmbedder":
        """Restore an embedder saved by :meth:`state_dict`."""
        if int(state["dim"]) != self.dim:
            raise ValueError(f"checkpoint dim {state['dim']} does not match "
                             f"this embedder's dim {self.dim}")
        model = ClassicalMDS(dim=self.dim).load_state_dict(state["model"])
        self._load_base(state)
        self.model = model
        return self


class ImputedMatrixEmbedder(_MatrixEmbedderBase):
    """Identity 'embedding': the imputed vector itself.

    This is "GEM without the embeddings by BiSAGE" in Fig. 7(a): the
    enhanced histogram detector runs directly on -120-padded RSS vectors.
    """

    def __init__(self, fill_value: float = DEFAULT_FILL_DBM):
        super().__init__(fill_value, scale=False)

    def fit(self, records: Sequence[SignalRecord]) -> "ImputedMatrixEmbedder":
        self._training = self._fit_view(records)
        return self

    def embed(self, record: SignalRecord, attach: bool = True) -> np.ndarray | None:
        return self._vector(record)

    def state_dict(self) -> dict:
        """Checkpointable state: the imputation view is the whole model."""
        return self._base_state()

    def load_state_dict(self, state: dict) -> "ImputedMatrixEmbedder":
        """Restore an embedder saved by :meth:`state_dict`."""
        self._load_base(state)
        return self
