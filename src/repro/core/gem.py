"""GEM: the end-to-end geofencing pipeline (Fig. 1, Algorithms 1–2).

:class:`EmbeddingGeofencer` composes any :class:`RecordEmbedder` with
any detector, which is exactly how the paper assembles its comparison
arms ("GraphSAGE + OD", "BiSAGE + LOF", ...).  :class:`GEM` is the
headline configuration — BiSAGE + the enhanced histogram detector with
online self-update — exposed with the paper's tuned defaults.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import GEMConfig
from repro.core.embedders import BiSAGEEmbedder
from repro.core.protocols import Detector, GeofenceDecision, RecordEmbedder
from repro.core.records import SignalRecord
from repro.detection.histogram import HistogramDetector

__all__ = ["EmbeddingGeofencer", "GEM"]


class EmbeddingGeofencer:
    """Generic embedder + one-class-detector geofencing pipeline.

    Parameters
    ----------
    embedder:
        Maps records to embeddings (and owns any dynamic state such as
        the bipartite graph).
    detector:
        One-class detector fitted on the training embeddings.  If it
        exposes ``is_confident_inlier``/``update`` (the enhanced
        histogram detector does), the Sec. IV-C online self-update is
        available.
    self_update:
        Enable the online model update of Algorithm 2 lines 6–7.
    batch_update_size:
        Buffer this many confident inliers before applying one batch
        update (Fig. 14(d,e)); 1 reproduces the per-record update.
    """

    def __init__(self, embedder: RecordEmbedder, detector: Detector,
                 self_update: bool = True, batch_update_size: int = 1):
        if batch_update_size < 1:
            raise ValueError("batch_update_size must be >= 1")
        self.embedder = embedder
        self.detector = detector
        self.self_update = self_update
        self.batch_update_size = batch_update_size
        self._update_buffer: list[np.ndarray] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # Initial training (Sec. III)
    # ------------------------------------------------------------------
    def fit(self, records: Sequence[SignalRecord]) -> "EmbeddingGeofencer":
        """Train on in-premises records only (the semi-supervised setup)."""
        records = list(records)
        if not records:
            raise ValueError("GEM requires at least one training record")
        self.embedder.fit(records)
        self.detector.fit(self.embedder.training_embeddings())
        self._update_buffer = []
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Online inference (Algorithm 2)
    # ------------------------------------------------------------------
    def score(self, record: SignalRecord, attach: bool = False) -> float:
        """Outlier score of a record; +inf when it cannot be embedded."""
        embedding = self._embed(record, attach)
        if embedding is None:
            return math.inf
        return float(self.detector.decision_scores(embedding[None, :])[0])

    def predict(self, record: SignalRecord) -> bool:
        """True iff the record is predicted in-premises (no state change)."""
        embedding = self._embed(record, attach=False)
        if embedding is None:
            return False
        return not bool(self.detector.is_outlier(embedding[None, :])[0])

    def observe(self, record: SignalRecord) -> GeofenceDecision:
        """Full Algorithm 2: attach, embed, decide, maybe self-update."""
        embedding = self._embed(record, attach=True)
        if embedding is None:
            # Footnote 3: nothing recognisable — treat as an outlier.
            return GeofenceDecision(inside=False, score=math.inf)
        row = embedding[None, :]
        score = float(self.detector.decision_scores(row)[0])
        outlier = bool(self.detector.is_outlier(row)[0])
        if outlier:
            return GeofenceDecision(inside=False, score=score)
        confident = bool(self._confident(row))
        updated = False
        if confident and self.self_update and hasattr(self.detector, "update"):
            self._update_buffer.append(embedding)
            if len(self._update_buffer) >= self.batch_update_size:
                self.flush_updates()
            updated = True
        return GeofenceDecision(inside=True, score=score, confident=confident, updated=updated)

    def observe_stream(self, records: Iterable[SignalRecord]) -> list[GeofenceDecision]:
        return [self.observe(record) for record in records]

    def flush_updates(self) -> int:
        """Apply any buffered batch update; returns samples absorbed."""
        if not self._update_buffer:
            return 0
        batch = np.vstack(self._update_buffer)
        self._update_buffer = []
        self.detector.update(batch)
        return len(batch)

    def _confident(self, row: np.ndarray) -> bool:
        if hasattr(self.detector, "is_confident_inlier"):
            return bool(self.detector.is_confident_inlier(row)[0])
        return False

    def _embed(self, record: SignalRecord, attach: bool) -> np.ndarray | None:
        if not self._fitted:
            raise RuntimeError("pipeline has not been fitted; call fit first")
        if not record.readings:
            return None
        return self.embedder.embed(record, attach=attach)


class GEM(EmbeddingGeofencer):
    """The paper's system: BiSAGE + enhanced histogram OD + self-update."""

    def __init__(self, config: GEMConfig = GEMConfig()):
        self.config = config
        embedder = BiSAGEEmbedder(config.bisage,
                                  weight_offset=config.weight_offset,
                                  refresh_every=config.refresh_cache_every)
        detector = HistogramDetector(config.histogram)
        super().__init__(embedder, detector,
                         self_update=config.self_update,
                         batch_update_size=config.batch_update_size)

    @property
    def graph(self):
        """The underlying weighted bipartite graph (after fit)."""
        return self.embedder.graph

    @property
    def bisage(self):
        """The trained BiSAGE model (after fit)."""
        return self.embedder.model
