"""GEM: the end-to-end geofencing pipeline (Fig. 1, Algorithms 1–2).

:class:`EmbeddingGeofencer` composes any :class:`RecordEmbedder` with
any detector, which is exactly how the paper assembles its comparison
arms ("GraphSAGE + OD", "BiSAGE + LOF", ...).  :class:`GEM` is the
headline configuration — BiSAGE + the enhanced histogram detector with
online self-update — exposed with the paper's tuned defaults.
"""

from __future__ import annotations

import copy
import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import GEMConfig
from repro.core.embedders import BiSAGEEmbedder
from repro.core.protocols import Detector, GeofenceDecision, RecordEmbedder
from repro.core.records import SignalRecord
from repro.detection.histogram import HistogramDetector

__all__ = ["EmbeddingGeofencer", "GEM", "RefreshJob"]


class RefreshJob:
    """A coordinated refresh staged in three phases.

    ``begin_refresh`` (the *copy* phase) deep-copies the embedder and
    detector while the caller holds whatever lock guards the live
    pipeline; :meth:`build` (the *rebuild* phase) does all the heavy
    work — cache rebuild, re-embedding, detector refit — purely on
    those copies, so the caller may release its lock first;
    ``commit_refresh`` (the *swap* phase) installs the result with two
    pointer assignments.  ``EmbeddingGeofencer.refresh`` runs all three
    back-to-back and is bit-identical to the pre-staged implementation.
    """

    def __init__(self, pipeline: "EmbeddingGeofencer", embedder, detector,
                 records: list[SignalRecord],
                 admit_new_macs_after: int | None):
        self.pipeline = pipeline
        self.embedder = embedder
        self.detector = detector
        self.records = records
        self.admit_new_macs_after = admit_new_macs_after
        self.absorbed: int | None = None
        self.committed = False

    def build(self) -> int:
        """Rebuild caches and refit the detector on the copies.

        Touches only this job's copies — never the live pipeline — so
        it is safe to run without holding the pipeline's lock.  Returns
        the number of records the detector was refit on.
        """
        if self.admit_new_macs_after is not None:
            self.embedder.refresh_cache(admit_new_macs_after=self.admit_new_macs_after)
        else:
            self.embedder.refresh_cache()
        rows = [self.embedder.embed(record, attach=False) for record in self.records]
        rows = [row for row in rows if row is not None]
        if not rows:
            raise ValueError("coordinated refresh aborted: none of the "
                             f"{len(self.records)} recent-inlier records are embeddable "
                             "after the cache rebuild; the pipeline keeps serving "
                             "its pre-refresh state")
        self.detector.refit(np.vstack(rows))
        self.absorbed = len(rows)
        return self.absorbed


class EmbeddingGeofencer:
    """Generic embedder + one-class-detector geofencing pipeline.

    Parameters
    ----------
    embedder:
        Maps records to embeddings (and owns any dynamic state such as
        the bipartite graph).
    detector:
        One-class detector fitted on the training embeddings.  If it
        exposes ``is_confident_inlier``/``update`` (the enhanced
        histogram detector does), the Sec. IV-C online self-update is
        available.
    self_update:
        Enable the online model update of Algorithm 2 lines 6–7.
    batch_update_size:
        Buffer this many confident inliers before applying one batch
        update (Fig. 14(d,e)); 1 reproduces the per-record update.
    """

    def __init__(self, embedder: RecordEmbedder, detector: Detector,
                 self_update: bool = True, batch_update_size: int = 1):
        if batch_update_size < 1:
            raise ValueError("batch_update_size must be >= 1")
        self.embedder = embedder
        self.detector = detector
        self.self_update = self_update
        self.batch_update_size = batch_update_size
        self._update_buffer: list[np.ndarray] = []
        self._fitted = False
        # Declarative provenance: build_pipeline() stamps the PipelineSpec
        # the pipeline was built from so checkpoints can embed it.
        self.spec = None

    # ------------------------------------------------------------------
    # Initial training (Sec. III)
    # ------------------------------------------------------------------
    def fit(self, records: Sequence[SignalRecord]) -> "EmbeddingGeofencer":
        """Train on in-premises records only (the semi-supervised setup)."""
        records = list(records)
        if not records:
            raise ValueError("GEM requires at least one training record")
        self.embedder.fit(records)
        self.detector.fit(self.embedder.training_embeddings())
        self._update_buffer = []
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Online inference (Algorithm 2)
    # ------------------------------------------------------------------
    def score(self, record: SignalRecord, attach: bool = False) -> float:
        """Outlier score of a record; +inf when it cannot be embedded."""
        embedding = self._embed(record, attach)
        if embedding is None:
            return math.inf
        return float(self.detector.decision_scores(embedding[None, :])[0])

    def predict(self, record: SignalRecord) -> bool:
        """True iff the record is predicted in-premises (no state change)."""
        embedding = self._embed(record, attach=False)
        if embedding is None:
            return False
        return not bool(self.detector.is_outlier(embedding[None, :])[0])

    def observe(self, record: SignalRecord) -> GeofenceDecision:
        """Full Algorithm 2: attach, embed, decide, maybe self-update."""
        embedding = self._embed(record, attach=True)
        if embedding is None:
            # Footnote 3: nothing recognisable — treat as an outlier.
            return GeofenceDecision(inside=False, score=math.inf)
        row = embedding[None, :]
        score = float(self.detector.decision_scores(row)[0])
        outlier = bool(self.detector.is_outlier(row)[0])
        if outlier:
            return GeofenceDecision(inside=False, score=score)
        confident = bool(self._confident(row))
        buffered = False
        updated = False
        if confident and self.self_update and hasattr(self.detector, "update"):
            self._update_buffer.append(embedding)
            buffered = True
            if len(self._update_buffer) >= self.batch_update_size:
                self.flush_updates()
                updated = True
        return GeofenceDecision(inside=True, score=score, confident=confident,
                                buffered=buffered, updated=updated)

    # ------------------------------------------------------------------
    # Vectorized batch observation (the batch data plane)
    # ------------------------------------------------------------------
    def supports_batch_observe(self) -> bool:
        """True when both halves of the fused batch path are available:
        a graph embedder exposing a hoisted inference kernel (in its
        coordinated-maintenance regime) and a detector whose batch
        scoring is bit-safe (``supports_batch_score``)."""
        return (hasattr(self.embedder, "supports_batch_inference")
                and self.embedder.supports_batch_inference()
                and hasattr(self.detector, "supports_batch_score")
                and self.detector.supports_batch_score())

    # Verdicts are computed this many embedded rows ahead; a detector
    # update invalidates the unconsumed remainder, so the chunk bounds
    # wasted re-scoring under update-heavy streams while amortising the
    # per-call scoring overhead everywhere else.
    _SCORE_CHUNK = 64

    def observe_many(self, records: Sequence[SignalRecord],
                     kernel=None) -> list[GeofenceDecision]:
        """Observe a batch through the fused data plane.

        Semantically ``[self.observe(r) for r in records]`` — decisions,
        self-update behaviour and post-batch state are bit-identical to
        that scalar loop (the differential harness enforces it) — but
        the per-record pipeline is restructured: one hoisted inference
        kernel embeds every record, and the detector scores embedded
        rows in chunks via :meth:`score_batch` instead of three scalar
        evaluations per record.  A mid-batch detector update (confident
        inliers filling ``batch_update_size``) discards the unconsumed
        chunk, so later records are always scored by the detector state
        the scalar loop would have shown them.

        ``kernel`` lets a serving layer pass a cached kernel (see
        :class:`repro.serve.batchplane.BatchPlane`); it must be valid
        for the embedder's current ``batch_token()``.  Configurations
        without batch support fall back to the scalar loop.
        """
        records = list(records)
        if not records:
            return []
        if not self._fitted:
            raise RuntimeError("pipeline has not been fitted; call fit first")
        if not self.supports_batch_observe():
            return [self.observe(record) for record in records]
        if kernel is None:
            kernel = self.embedder.batched_inference()

        # Phase 1: attach + embed.  Graph mutations here are order-exact
        # with the scalar loop (known-check before attach, per-embedded
        # cache extension); empty-readings records never attach.
        n = len(records)
        rows: list[np.ndarray | None] = [None] * n
        embedded: list[int] = []
        for i, record in enumerate(records):
            if not record.readings:
                continue
            prepared = self.embedder.attach_prepared(record)
            if prepared is None:
                continue
            rows[i] = kernel.embed(*prepared)
            embedded.append(i)

        # Phase 2: chunked verdict walk.  [seg_start, seg_end) over
        # `embedded` is the window whose precomputed verdicts are still
        # valid against the current detector state.
        decisions: list[GeofenceDecision | None] = [None] * n
        can_update = self.self_update and hasattr(self.detector, "update")
        scores = outliers = confident = None
        seg_start = seg_end = 0
        k = 0
        for i in range(n):
            if rows[i] is None:
                # Footnote 3: nothing recognisable — treat as an outlier.
                decisions[i] = GeofenceDecision(inside=False, score=math.inf)
                continue
            if k >= seg_end:
                seg_start = k
                seg_end = min(k + self._SCORE_CHUNK, len(embedded))
                matrix = np.vstack([rows[j] for j in embedded[seg_start:seg_end]])
                scores, outliers, confident = self.detector.score_batch(matrix)
            p = k - seg_start
            k += 1
            score = float(scores[p])
            if outliers[p]:
                decisions[i] = GeofenceDecision(inside=False, score=score)
                continue
            conf = bool(confident[p])
            buffered = False
            updated = False
            if conf and can_update:
                self._update_buffer.append(rows[i])
                buffered = True
                if len(self._update_buffer) >= self.batch_update_size:
                    self.flush_updates()
                    updated = True
                    seg_end = k  # detector moved: unconsumed verdicts are stale
            decisions[i] = GeofenceDecision(inside=True, score=score, confident=conf,
                                            buffered=buffered, updated=updated)
        return decisions

    def observe_stream(self, records: Iterable[SignalRecord],
                       flush: bool = True) -> list[GeofenceDecision]:
        """Observe a whole stream; by default flush any leftover updates.

        With ``batch_update_size > 1`` the stream can end with confident
        inliers still sitting in the update buffer; ``flush=True``
        applies them once the stream is exhausted (decisions already made
        are unaffected — only the final model state differs).  Pass
        ``flush=False`` to keep the partial buffer pending, e.g. when the
        same pipeline will continue on another stream.
        """
        decisions = [self.observe(record) for record in records]
        if flush:
            self.flush_updates()
        return decisions

    def flush_updates(self) -> int:
        """Apply any buffered batch update; returns samples absorbed."""
        if not self._update_buffer:
            return 0
        batch = np.vstack(self._update_buffer)
        self._update_buffer = []
        self.detector.update(batch)
        return len(batch)

    @property
    def pending_updates(self) -> int:
        """Confident inliers buffered but not yet applied to the detector."""
        return len(self._update_buffer)

    # ------------------------------------------------------------------
    # Coordinated refresh (control plane)
    # ------------------------------------------------------------------
    def supports_refresh(self) -> bool:
        """True when both halves of a coordinated refresh are available:
        an embedder with ``refresh_cache`` and a detector with ``refit``."""
        return (hasattr(self.embedder, "refresh_cache")
                and hasattr(self.detector, "refit"))

    def refresh(self, records: Sequence[SignalRecord],
                admit_new_macs_after: int | None = None) -> int:
        """Coordinated refresh: rebuild embedding caches *and* refit the
        detector on re-embedded recent inliers, as one atomic operation.

        This is the drift-recovery primitive the raw ``refresh_cache_every``
        flag got wrong twice over: rebuilding the caches alone moves the
        embedding function under a detector calibrated to the old one,
        and admitting never-trained MACs into aggregation collapses
        separation outright.  Here the refreshed embedder recomputes its
        caches over the grown graph *within the trained MAC universe*
        (new MACs join at re-provision, when the weights retrain), then
        re-embeds ``records`` (recent known-inlier records, e.g. a fleet
        reservoir anchored on the training set) and the detector is
        refit on exactly those embeddings — score scale and embedding
        function move together.  Returns the number of records the
        detector was refit on.

        ``admit_new_macs_after=N`` softens the trained-universe rule:
        a MAC first seen after training joins inference-time aggregation
        at this refresh once at least N attached observations sense it
        (support-threshold admission — the middle ground between "never
        admit until re-provision" and the legacy admit-everything
        collapse).  ``None`` keeps the strict rule.

        Atomic: all work happens on copies; the live pipeline is only
        swapped at the end, so any mid-refresh failure (nothing
        embeddable, detector refit error) leaves it serving the
        pre-refresh state.  The self-update buffer is cleared — buffered
        embeddings were produced by the old embedding function.

        Concurrency-minded callers can stage the same operation:
        :meth:`begin_refresh` (copy, under the caller's lock) →
        :meth:`RefreshJob.build` (heavy rebuild, lock released) →
        :meth:`commit_refresh` (pointer swap, under the lock again).
        """
        job = self.begin_refresh(records, admit_new_macs_after=admit_new_macs_after)
        absorbed = job.build()
        self.commit_refresh(job)
        return absorbed

    def begin_refresh(self, records: Sequence[SignalRecord],
                      admit_new_macs_after: int | None = None) -> RefreshJob:
        """Copy phase of a staged refresh: validate and snapshot.

        Deep-copies the embedder and detector (call this while holding
        whatever lock serialises access to the live pipeline) and
        returns a :class:`RefreshJob` whose :meth:`~RefreshJob.build`
        may then run without that lock.
        """
        if not self._fitted:
            raise RuntimeError("pipeline has not been fitted; call fit first")
        if not self.supports_refresh():
            missing = ("refresh_cache" if not hasattr(self.embedder, "refresh_cache")
                       else "refit")
            part = self.embedder if missing == "refresh_cache" else self.detector
            raise TypeError(f"{type(part).__name__} has no {missing}; this pipeline "
                            "does not support coordinated refresh")
        if admit_new_macs_after is not None and admit_new_macs_after < 1:
            raise ValueError(f"admit_new_macs_after must be >= 1 or None, "
                             f"got {admit_new_macs_after}")
        records = [r for r in records if r.readings]
        if not records:
            raise ValueError("coordinated refresh needs at least one non-empty "
                             "recent-inlier record to refit the detector on")
        return RefreshJob(self, copy.deepcopy(self.embedder),
                          copy.deepcopy(self.detector), records,
                          admit_new_macs_after)

    def commit_refresh(self, job: RefreshJob) -> None:
        """Swap phase of a staged refresh: install the rebuilt copies.

        Two pointer assignments plus the update-buffer clear — buffered
        embeddings were produced by the old embedding function.  Call
        under the same lock :meth:`begin_refresh` was called under.
        Observations served between copy and commit keep their
        decisions; their graph attachments live in the pre-refresh
        embedder and are superseded by the swap (bounded staleness, one
        refresh window deep — the serial path has no such window).
        """
        if job.pipeline is not self:
            raise ValueError("refresh job belongs to a different pipeline")
        if job.absorbed is None:
            raise RuntimeError("refresh job has not been built; call build() first")
        if job.committed:
            raise RuntimeError("refresh job was already committed")
        job.committed = True
        self.embedder = job.embedder
        self.detector = job.detector
        self._update_buffer = []

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state of the whole pipeline.

        Requires both the embedder and the detector to expose
        ``state_dict`` themselves (BiSAGE + the histogram detector do).
        """
        if not self._fitted:
            raise RuntimeError("cannot checkpoint an unfitted pipeline; call fit first")
        for part in (self.embedder, self.detector):
            if not hasattr(part, "state_dict"):
                raise TypeError(f"{type(part).__name__} does not support checkpointing "
                                "(no state_dict method)")
        if self._update_buffer:
            buffer = np.vstack(self._update_buffer)
        else:
            buffer = np.empty((0, 0), dtype=np.float64)
        return {
            "self_update": self.self_update,
            "batch_update_size": self.batch_update_size,
            "update_buffer": buffer,
            "embedder": self.embedder.state_dict(),
            "detector": self.detector.state_dict(),
        }

    def load_state_dict(self, state: dict) -> "EmbeddingGeofencer":
        """Restore pipeline state saved by :meth:`state_dict` in place.

        All-or-nothing: the state is restored into fresh copies of the
        embedder and detector and only swapped in once every piece
        loaded, so a mid-load failure (bad detector payload after a good
        embedder load) leaves the live pipeline completely untouched.
        """
        for part in (self.embedder, self.detector):
            if not hasattr(part, "load_state_dict"):
                raise TypeError(f"{type(part).__name__} does not support checkpointing "
                                "(no load_state_dict method)")
        embedder = copy.deepcopy(self.embedder)
        embedder.load_state_dict(state["embedder"])
        detector = copy.deepcopy(self.detector)
        detector.load_state_dict(state["detector"])
        buffer = np.asarray(state["update_buffer"], dtype=np.float64)
        # Commit point: nothing above mutated self.
        self.embedder = embedder
        self.detector = detector
        self.self_update = bool(state["self_update"])
        self.batch_update_size = int(state["batch_update_size"])
        self._update_buffer = [row for row in buffer] if buffer.size else []
        self._fitted = True
        return self

    def _confident(self, row: np.ndarray) -> bool:
        if hasattr(self.detector, "is_confident_inlier"):
            return bool(self.detector.is_confident_inlier(row)[0])
        return False

    def _embed(self, record: SignalRecord, attach: bool) -> np.ndarray | None:
        if not self._fitted:
            raise RuntimeError("pipeline has not been fitted; call fit first")
        if not record.readings:
            return None
        return self.embedder.embed(record, attach=attach)


class GEM(EmbeddingGeofencer):
    """The paper's system: BiSAGE + enhanced histogram OD + self-update."""

    def __init__(self, config: GEMConfig = GEMConfig()):
        self.config = config
        embedder = BiSAGEEmbedder(config.bisage,
                                  weight_offset=config.weight_offset,
                                  refresh_every=config.refresh_cache_every)
        detector = HistogramDetector(config.histogram)
        super().__init__(embedder, detector,
                         self_update=config.self_update,
                         batch_update_size=config.batch_update_size)

    @property
    def graph(self):
        """The underlying weighted bipartite graph (after fit)."""
        return self.embedder.graph

    @property
    def bisage(self):
        """The trained BiSAGE model (after fit)."""
        return self.embedder.model

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["config"] = self.config.to_dict()
        return state

    def load_state_dict(self, state: dict) -> "GEM":
        """Restore GEM state; the checkpoint's config must match ours.

        The nested BiSAGE/histogram states validate their own configs;
        this guards the pipeline-level fields (``self_update``,
        ``batch_update_size``, ``weight_offset``, ...) so ``self.config``
        can never misdescribe the restored model.

        All-or-nothing: the state is restored into freshly constructed
        components and only swapped in once every piece loaded, so a
        corrupt checkpoint leaves a live model completely untouched.
        """
        saved_config = GEMConfig.from_dict(state["config"])
        if saved_config != self.config:
            raise ValueError("checkpoint config does not match this model's config; "
                             f"saved {saved_config}, constructed with {self.config}")
        config = self.config
        embedder = BiSAGEEmbedder(config.bisage,
                                  weight_offset=config.weight_offset,
                                  refresh_every=config.refresh_cache_every)
        embedder.load_state_dict(state["embedder"])
        detector = HistogramDetector(config.histogram).load_state_dict(state["detector"])
        buffer = np.asarray(state["update_buffer"], dtype=np.float64)
        # Commit point: nothing above mutated self.
        self.embedder = embedder
        self.detector = detector
        self.self_update = bool(state["self_update"])
        self.batch_update_size = int(state["batch_update_size"])
        self._update_buffer = [row for row in buffer] if buffer.size else []
        self._fitted = True
        return self

    @classmethod
    def from_state_dict(cls, state: dict) -> "GEM":
        """Reconstruct a fitted GEM from :meth:`state_dict` output."""
        gem = cls(GEMConfig.from_dict(state["config"]))
        gem.load_state_dict(state)
        return gem
