"""GEM core: records, configuration and the end-to-end pipeline."""

from repro.core.config import GEMConfig
from repro.core.embedders import (
    AutoencoderEmbedder,
    BiSAGEEmbedder,
    GraphSAGEEmbedder,
    ImputedMatrixEmbedder,
    MDSEmbedder,
)
from repro.core.gem import GEM, EmbeddingGeofencer
from repro.core.protocols import Detector, GeofenceDecision, GeofenceModel, RecordEmbedder
from repro.core.records import LabeledRecord, SignalRecord, rss_bounds, unique_macs

__all__ = [
    "AutoencoderEmbedder",
    "BiSAGEEmbedder",
    "Detector",
    "EmbeddingGeofencer",
    "GEM",
    "GEMConfig",
    "GeofenceDecision",
    "GeofenceModel",
    "GraphSAGEEmbedder",
    "ImputedMatrixEmbedder",
    "LabeledRecord",
    "MDSEmbedder",
    "RecordEmbedder",
    "SignalRecord",
    "rss_bounds",
    "unique_macs",
]
