"""Protocols shared by geofencing pipelines, embedders and detectors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.records import SignalRecord

__all__ = ["GeofenceDecision", "GeofenceModel", "RecordEmbedder", "Detector"]


@dataclass(frozen=True)
class GeofenceDecision:
    """Outcome of one in-out inference (Algorithm 2).

    ``inside`` is the prediction (True = in-premises); ``score`` is the
    model's outlier score (higher = more outlying, +inf when the record
    could not be embedded at all); ``confident`` marks a highly confident
    inlier; ``buffered`` records that the observation entered the
    pending batch-update buffer; ``updated`` that an update was actually
    *applied* to the detector during this observation (with
    ``batch_update_size == 1`` the two coincide).
    """

    inside: bool
    score: float
    confident: bool = False
    buffered: bool = False
    updated: bool = False


@runtime_checkable
class RecordEmbedder(Protocol):
    """Maps variable-length signal records to fixed-length vectors."""

    def fit(self, records: Sequence[SignalRecord]) -> "RecordEmbedder": ...

    def training_embeddings(self) -> np.ndarray: ...

    def embed(self, record: SignalRecord, attach: bool = True) -> np.ndarray | None: ...


@runtime_checkable
class Detector(Protocol):
    """One-class detector over embeddings (higher score = more outlying)."""

    def fit(self, embeddings: np.ndarray) -> "Detector": ...

    def decision_scores(self, embeddings: np.ndarray) -> np.ndarray: ...

    def is_outlier(self, embeddings: np.ndarray) -> np.ndarray: ...


@runtime_checkable
class GeofenceModel(Protocol):
    """End-to-end geofencing system: train on in-premises records, stream."""

    def fit(self, records: Sequence[SignalRecord]) -> "GeofenceModel": ...

    def observe(self, record: SignalRecord) -> GeofenceDecision: ...
