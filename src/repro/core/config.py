"""GEM system configuration (all Sec.-V hyper-parameters in one place)."""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, replace

from repro.detection.histogram import HistogramConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["GEMConfig"]


@dataclass(frozen=True)
class GEMConfig:
    """Configuration for the full GEM pipeline.

    Defaults follow the paper's tuned baseline parameters (Sec. V):
    learning rate 0.003, embedding dimension 32, offset c = 120 dBm,
    scaling factor T = 0.06, τ_u = 0.005, τ_l = 0.001.
    """

    bisage: BiSAGEConfig = field(default_factory=BiSAGEConfig)
    histogram: HistogramConfig = field(default_factory=HistogramConfig)
    weight_offset: float = 120.0
    self_update: bool = True
    batch_update_size: int = 1
    # DEPRECATED. Rebuilding BiSAGE's per-layer caches mid-stream changes
    # the embedding function under a detector whose histograms were fitted
    # to the old one, so it is off by default (0) and PR-3 measured that
    # enabling it actively *hurts* post-churn recovery.  Use the
    # coordinated GEM.refresh(records) path (cache rebuild + detector
    # refit in one atomic operation) or a serve-layer MaintenancePolicy
    # instead; any value > 0 warns at construction and again when the
    # uncoordinated rebuild actually fires.
    refresh_cache_every: int = 0

    def __post_init__(self):
        check_positive(self.weight_offset, "weight_offset")
        check_positive_int(self.batch_update_size, "batch_update_size")
        if self.refresh_cache_every < 0:
            raise ValueError("refresh_cache_every must be >= 0")
        if self.refresh_cache_every > 0:
            warnings.warn(
                "GEMConfig.refresh_cache_every is deprecated: it rebuilds the "
                "embedding cache without refitting the detector, which hurts "
                "post-churn recovery; use the coordinated GEM.refresh(records) "
                "path or a fleet MaintenancePolicy instead",
                DeprecationWarning, stacklevel=3)

    def with_dim(self, dim: int) -> "GEMConfig":
        """Convenience for the Fig. 13(a)/14(a) embedding-dimension sweeps."""
        return replace(self, bisage=replace(self.bisage, dim=dim))

    def with_temperature(self, temperature: float) -> "GEMConfig":
        """Convenience for the Fig. 13(b)/14(b) scaling-factor sweeps."""
        return replace(self, histogram=replace(self.histogram, temperature=temperature))

    def with_bins(self, num_bins: int) -> "GEMConfig":
        """Convenience for the Fig. 13(c)/14(c) bin-count sweeps."""
        return replace(self, histogram=replace(self.histogram, num_bins=num_bins))

    def to_dict(self) -> dict:
        """JSON-safe nested dict of every hyper-parameter."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GEMConfig":
        """Inverse of :meth:`to_dict` (used by checkpoint loading)."""
        data = dict(data)
        if "bisage" in data:
            data["bisage"] = BiSAGEConfig.from_dict(data["bisage"])
        if "histogram" in data:
            data["histogram"] = HistogramConfig.from_dict(data["histogram"])
        return cls(**data)
