"""Persistence for record streams and datasets (JSON Lines).

Real deployments collect scans on a device and evaluate elsewhere; these
helpers serialise :class:`SignalRecord` streams and labelled test
streams to a line-oriented JSON format that is diff-able, append-able
and language-neutral.

Format: one JSON object per line.
``{"t": 12.0, "rss": {"aa:bb:..": -61.5}, "pos": [x, y, floor]}`` for
records; labelled records add ``"inside": true`` and optional ``"meta"``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.records import LabeledRecord, SignalRecord

__all__ = [
    "record_to_dict",
    "record_from_dict",
    "save_records",
    "load_records",
    "save_labeled_records",
    "load_labeled_records",
]


def record_to_dict(record: SignalRecord) -> dict:
    """JSON-safe dict form of one record."""
    out: dict = {"t": record.timestamp, "rss": dict(record.readings)}
    if record.position is not None:
        out["pos"] = list(record.position)
    return out


def record_from_dict(data: dict) -> SignalRecord:
    """Inverse of :func:`record_to_dict`; validates required keys."""
    if "rss" not in data:
        raise ValueError("record object missing 'rss' field")
    position = tuple(data["pos"]) if "pos" in data else None
    return SignalRecord(dict(data["rss"]), timestamp=float(data.get("t", 0.0)),
                        position=position)


def save_records(records: Iterable[SignalRecord], path: str | Path) -> int:
    """Write records as JSONL; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def load_records(path: str | Path) -> list[SignalRecord]:
    """Read a JSONL record stream written by :func:`save_records`."""
    path = Path(path)
    records = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(record_from_dict(json.loads(line)))
            except (json.JSONDecodeError, TypeError, ValueError) as error:
                raise ValueError(f"{path}:{line_number}: bad record line: {error}") from error
    return records


def save_labeled_records(items: Sequence[LabeledRecord], path: str | Path) -> int:
    """Write a labelled test stream as JSONL."""
    path = Path(path)
    with path.open("w") as handle:
        for item in items:
            data = record_to_dict(item.record)
            data["inside"] = bool(item.inside)
            if item.meta:
                data["meta"] = _json_safe(item.meta)
            handle.write(json.dumps(data) + "\n")
    return len(items)


def load_labeled_records(path: str | Path) -> list[LabeledRecord]:
    """Read a labelled stream written by :func:`save_labeled_records`."""
    path = Path(path)
    items = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                record = record_from_dict(data)
                items.append(LabeledRecord(record, inside=bool(data["inside"]),
                                           meta=data.get("meta", {})))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                raise ValueError(f"{path}:{line_number}: bad labelled line: {error}") from error
    return items


def _json_safe(meta: dict) -> dict:
    """Best-effort conversion of metadata values to JSON-safe types."""
    out = {}
    for key, value in meta.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[str(key)] = value
        else:
            out[str(key)] = str(value)
    return out
