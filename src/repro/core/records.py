"""RF signal record types.

A *signal record* is one scan event: the set of MAC addresses the device
heard, each with a received-signal-strength (RSS) value in dBm.  Records
are variable-length by nature — the central difficulty the paper's
bipartite-graph model removes (Sec. III-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["SignalRecord", "LabeledRecord", "unique_macs", "rss_bounds"]


@dataclass(frozen=True)
class SignalRecord:
    """A single RF scan: MAC address -> RSS (dBm).

    Attributes
    ----------
    readings:
        Mapping from MAC address string to RSS in dBm (negative values,
        typically -30 .. -95).
    timestamp:
        Seconds since the start of the collection (monotone within a
        stream); used only for bookkeeping and timing experiments.
    position:
        Optional ground-truth (x, y) or (x, y, floor) position, filled by
        the simulator; never consumed by the models.
    """

    readings: Mapping[str, float]
    timestamp: float = 0.0
    position: tuple | None = None

    def __post_init__(self):
        if not isinstance(self.readings, Mapping):
            raise TypeError("readings must be a mapping of MAC -> RSS")
        for mac, rss in self.readings.items():
            if not isinstance(mac, str) or not mac:
                raise ValueError(f"MAC addresses must be non-empty strings, got {mac!r}")
            if not math.isfinite(rss):
                raise ValueError(f"RSS for {mac} must be finite, got {rss!r}")
        object.__setattr__(self, "readings", dict(self.readings))

    @property
    def macs(self) -> frozenset[str]:
        return frozenset(self.readings)

    def __len__(self) -> int:
        return len(self.readings)

    def rss(self, mac: str) -> float:
        return self.readings[mac]

    def strongest_mac(self) -> str | None:
        """The MAC with the highest RSS (the AP a device would associate to)."""
        if not self.readings:
            return None
        return max(self.readings, key=self.readings.get)

    def restricted_to(self, macs: Iterable[str]) -> "SignalRecord":
        """A copy keeping only readings whose MAC is in ``macs``."""
        allowed = set(macs)
        kept = {mac: rss for mac, rss in self.readings.items() if mac in allowed}
        return SignalRecord(kept, timestamp=self.timestamp, position=self.position)

    def without(self, macs: Iterable[str]) -> "SignalRecord":
        """A copy dropping readings whose MAC is in ``macs``."""
        banned = set(macs)
        kept = {mac: rss for mac, rss in self.readings.items() if mac not in banned}
        return SignalRecord(kept, timestamp=self.timestamp, position=self.position)


@dataclass(frozen=True)
class LabeledRecord:
    """A signal record with its ground-truth geofence label."""

    record: SignalRecord
    inside: bool
    meta: dict = field(default_factory=dict)


def unique_macs(records: Iterable[SignalRecord]) -> set[str]:
    """Union of all MAC addresses appearing in ``records``."""
    macs: set[str] = set()
    for record in records:
        macs.update(record.readings)
    return macs


def rss_bounds(records: Iterable[SignalRecord]) -> tuple[float, float]:
    """(min, max) RSS over all readings; raises on an empty collection."""
    low, high = math.inf, -math.inf
    for record in records:
        for rss in record.readings.values():
            low = min(low, rss)
            high = max(high, rss)
    if low is math.inf:
        raise ValueError("no RSS readings found in records")
    return low, high
