"""ROC curves and AUC over outlier scores (Fig. 7(b))."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RocCurve", "roc_curve", "auc", "finite_scores"]


def finite_scores(scores) -> np.ndarray:
    """Map infinite scores into the finite range, rejecting NaN.

    ``+inf`` ("could not be embedded": always flagged) lands just above
    the largest finite score, ``-inf`` just below the smallest, so the
    ranking a ROC integrates is preserved.  A stream with *no* finite
    score collapses to a constant — a legitimate all-tied curve.  NaN is
    a computation bug upstream and raises instead of silently sorting
    to one end.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if np.isnan(scores).any():
        raise ValueError("scores contain NaN; fix the scorer rather than ranking NaNs")
    finite = scores[np.isfinite(scores)]
    hi = float(finite.max()) + 1.0 if finite.size else 1.0
    lo = float(finite.min()) - 1.0 if finite.size else 0.0
    out = np.where(scores == np.inf, hi, scores)
    return np.where(out == -np.inf, lo, out)


@dataclass(frozen=True)
class RocCurve:
    """A ROC curve: parallel FPR/TPR arrays plus the thresholds used."""

    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray

    @property
    def auc(self) -> float:
        return auc(self.fpr, self.tpr)


def roc_curve(scores, is_positive) -> RocCurve:
    """ROC over decision scores, higher score = predicted positive.

    For the paper's Fig. 7(b), scores are outlier scores and the positive
    class is "outside".  Handles infinite scores (records that could not
    be embedded are +inf: always flagged).
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(is_positive, dtype=bool)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be matching 1-D arrays")
    if scores.size == 0:
        raise ValueError("ROC needs at least one sample per class, got an empty stream")
    if np.isnan(scores).any():
        raise ValueError("scores contain NaN; fix the scorer rather than ranking NaNs")
    if labels.all() or (~labels).all():
        raise ValueError("ROC needs both positive and negative samples")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    tps = np.cumsum(sorted_labels)
    fps = np.cumsum(~sorted_labels)
    # Collapse ties: keep the last point of each distinct score value.
    sorted_scores = scores[order]
    distinct = np.r_[np.nonzero(np.diff(sorted_scores))[0], len(sorted_scores) - 1]
    tpr = tps[distinct] / labels.sum()
    fpr = fps[distinct] / (~labels).sum()
    tpr = np.r_[0.0, tpr]
    fpr = np.r_[0.0, fpr]
    thresholds = np.r_[np.inf, sorted_scores[distinct]]
    return RocCurve(fpr=fpr, tpr=tpr, thresholds=thresholds)


def auc(fpr, tpr) -> float:
    """Area under a curve via the trapezoid rule (monotone fpr assumed)."""
    fpr = np.asarray(fpr, dtype=np.float64)
    tpr = np.asarray(tpr, dtype=np.float64)
    if len(fpr) != len(tpr) or len(fpr) < 2:
        raise ValueError("need at least two curve points")
    return float(np.trapezoid(tpr, fpr))
