"""Paper-style table and series formatting for benchmark output."""

from __future__ import annotations

from typing import Sequence

from repro.eval.metrics import InOutMetrics

__all__ = ["format_table", "format_mean_min_max", "metrics_row", "format_series"]


def format_mean_min_max(mean: float, low: float, high: float) -> str:
    """The Table I cell format: ``0.98 (0.94, 1.00)``."""
    return f"{mean:.2f} ({low:.2f}, {high:.2f})"


def metrics_row(metrics: InOutMetrics, decimals: int = 2) -> list[str]:
    """One table row of the six P/R/F columns."""
    return [f"{value:.{decimals}f}" for value in metrics.as_row()]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str | None = None) -> str:
    """Monospace table with aligned columns."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float], decimals: int = 3) -> str:
    """A figure series as one line: ``name: x=..., y=...``."""
    pairs = ", ".join(f"{x}:{y:.{decimals}f}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
