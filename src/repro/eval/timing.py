"""Inference-time breakdown probes (Fig. 14).

Measures the three steps of Algorithm 2 separately — BiSAGE embedding,
in-out detection, model update — plus batch-mode update timing, mirroring
the paper's wall-clock analysis (numbers are substrate-specific; the
*shape* across parameters is what the bench reproduces).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.gem import GEM
from repro.core.records import SignalRecord

__all__ = ["InferenceTiming", "measure_inference_breakdown", "measure_batch_update"]


@dataclass(frozen=True)
class InferenceTiming:
    """Mean per-record milliseconds for each Algorithm 2 step."""

    embed_ms: float
    detect_ms: float
    update_ms: float

    @property
    def total_ms(self) -> float:
        return self.embed_ms + self.detect_ms + self.update_ms


def measure_inference_breakdown(gem: GEM, records: list[SignalRecord],
                                repeats: int = 1) -> InferenceTiming:
    """Time embed / detect / update separately over a record stream.

    The update step is forced (each record's embedding is absorbed) so
    its cost is measured even for records the confidence filter would
    skip — matching the paper's per-step probes.
    """
    if not records:
        raise ValueError("need at least one record to time")
    embed_s = detect_s = update_s = 0.0
    count = 0
    for _ in range(repeats):
        for record in records:
            t0 = time.perf_counter()
            embedding = gem.embedder.embed(record, attach=True)
            t1 = time.perf_counter()
            if embedding is None:
                continue
            row = embedding[None, :]
            gem.detector.decision_scores(row)
            gem.detector.is_outlier(row)
            t2 = time.perf_counter()
            gem.detector.update(row)
            t3 = time.perf_counter()
            embed_s += t1 - t0
            detect_s += t2 - t1
            update_s += t3 - t2
            count += 1
    if count == 0:
        raise ValueError("no record could be embedded")
    scale = 1000.0 / count
    return InferenceTiming(embed_ms=embed_s * scale, detect_ms=detect_s * scale,
                           update_ms=update_s * scale)


def measure_batch_update(gem: GEM, embeddings: np.ndarray, batch_size: int) -> tuple[float, float]:
    """(per-batch ms, total ms) to absorb ``embeddings`` in batches.

    Reproduces Fig. 14(d,e): larger batches cost more per batch but fewer
    rebuilds make the total cheaper.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    per_batch: list[float] = []
    t_total0 = time.perf_counter()
    for start in range(0, len(embeddings), batch_size):
        batch = embeddings[start:start + batch_size]
        t0 = time.perf_counter()
        gem.detector.update(batch)
        per_batch.append((time.perf_counter() - t0) * 1000.0)
    total_ms = (time.perf_counter() - t_total0) * 1000.0
    return float(np.mean(per_batch)), total_ms
