"""Streaming evaluation harness.

Runs a geofencing model through the paper's protocol: fit on the
training records, then feed the labelled test records *in temporal
order* through ``observe`` (so self-updating models update as they
would deployed), and score the predictions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable

import numpy as np

from repro.core.protocols import GeofenceDecision, GeofenceModel
from repro.core.records import LabeledRecord
from repro.datasets.synthetic import GeofenceDataset
from repro.eval.metrics import InOutMetrics, confusion_from_pairs, metrics_from_pairs
from repro.eval.roc import RocCurve, finite_scores, roc_curve

__all__ = ["EvaluationResult", "evaluate_streaming", "score_stream"]


@dataclass
class EvaluationResult:
    """Everything measured in one streaming run."""

    metrics: InOutMetrics
    decisions: list[GeofenceDecision]
    labels: list[bool]
    fit_seconds: float
    stream_seconds: float
    meta: dict = field(default_factory=dict)

    @property
    def scores(self) -> np.ndarray:
        return np.asarray([decision.score for decision in self.decisions])

    @property
    def num_updates(self) -> int:
        """Confident-inlier samples absorbed into (or buffered for) the
        model — one per buffered observation, independent of how the
        batch size groups them into flushes."""
        return sum(1 for decision in self.decisions if decision.buffered)

    def roc(self) -> RocCurve:
        """ROC over the streamed scores with 'outside' as positive."""
        return roc_curve(finite_scores(self.scores),
                         [not label for label in self.labels])


def evaluate_streaming(model: GeofenceModel, dataset: GeofenceDataset,
                       max_test_records: int | None = None) -> EvaluationResult:
    """Fit on ``dataset.train`` and stream ``dataset.test`` through the model.

    ``dataset.test`` may be any iterable of labelled records — a list, a
    generator, a file-backed stream — consumed exactly once, in order.
    """
    test: Iterable[LabeledRecord] = dataset.test
    if max_test_records is not None:
        test = islice(test, max_test_records)

    t0 = time.perf_counter()
    model.fit(dataset.train)
    fit_seconds = time.perf_counter() - t0

    decisions: list[GeofenceDecision] = []
    labels: list[bool] = []
    t0 = time.perf_counter()
    for item in test:
        decisions.append(model.observe(item.record))
        labels.append(item.inside)
    stream_seconds = time.perf_counter() - t0

    metrics = metrics_from_pairs(zip(labels, (d.inside for d in decisions)))
    return EvaluationResult(metrics=metrics, decisions=decisions, labels=labels,
                            fit_seconds=fit_seconds, stream_seconds=stream_seconds,
                            meta=dict(dataset.meta))


def score_stream(model: GeofenceModel, records: Iterable[LabeledRecord]) -> tuple[np.ndarray, np.ndarray]:
    """Observe a labelled stream; returns (scores, outside_labels) for ROC."""
    scores = []
    outside = []
    for item in records:
        decision = model.observe(item.record)
        scores.append(decision.score)
        outside.append(not item.inside)
    return finite_scores(scores), np.asarray(outside, dtype=bool)
