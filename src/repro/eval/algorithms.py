"""Declarative specs for every algorithm arm in the paper's evaluation.

Table I compares nine systems; Fig. 7 adds two ablations.  Each arm is
a :class:`~repro.pipeline.spec.PipelineSpec` resolved through the
component registry, so the benchmark scripts stay declarative and the
serving stack can persist and rebuild any arm.  ``ALGORITHM_SPECS``
holds the paper-default spec per arm; :func:`arm_spec` parameterises
them (seed/dim sweeps, shared GEM hyper-parameters) and
:func:`make_algorithm` remains the one-call compatibility shim that
builds the live pipeline.

All arms share the embedding dimension and seeds so differences come
from the algorithms, not the budgets.  Arms that *have* no seeded or
dimensioned component reject an explicit override (``strict=True``) or
warn (the shim), instead of silently dropping it.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

from repro.core.config import GEMConfig
from repro.embedding.graphsage import GraphSAGEConfig
from repro.pipeline import ComponentSpec, PipelineSpec, build_pipeline

__all__ = ["ALGORITHM_NAMES", "ALGORITHM_SPECS", "arm_accepts", "arm_spec",
           "make_algorithm"]

ALGORITHM_NAMES = (
    "GEM",
    "SignatureHome",
    "INOA",
    "GraphSAGE+OD",
    "Autoencoder+OD",
    "MDS+OD",
    "BiSAGE+FeatureBagging",
    "BiSAGE+iForest",
    "BiSAGE+LOF",
    "GEM(no-BiSAGE)",     # Fig. 7(a): imputed matrix straight into OD
    "GEM(plain-HBOS)",    # Fig. 7(b): no softmax enhancement, no update
)

_DEFAULT_SEED = 0
_DEFAULT_DIM = 32

# Arms with no component that consumes the shared sweep parameter; an
# explicit override of these is an inapplicable hyper-parameter, not a
# silent no-op (see `arm_spec`).
_SEEDLESS_ARMS = frozenset({"SignatureHome", "INOA", "MDS+OD", "GEM(no-BiSAGE)"})
_DIMLESS_ARMS = frozenset({"SignatureHome", "INOA", "GEM(no-BiSAGE)"})


def arm_accepts(name: str, parameter: str) -> bool:
    """Whether ``name`` has a component that consumes ``seed``/``dim``.

    Sweep drivers use this to skip inapplicable overrides instead of
    tripping :func:`arm_spec`'s strict rejection.
    """
    if name not in ALGORITHM_NAMES:
        raise ValueError(f"unknown algorithm {name!r}; known: {ALGORITHM_NAMES}")
    if parameter == "seed":
        return name not in _SEEDLESS_ARMS
    if parameter == "dim":
        return name not in _DIMLESS_ARMS
    raise ValueError(f"unknown shared parameter {parameter!r}; known: seed, dim")


def arm_spec(name: str, seed: int = _DEFAULT_SEED, dim: int = _DEFAULT_DIM,
             gem_config: GEMConfig | None = None, strict: bool = True) -> PipelineSpec:
    """The :class:`PipelineSpec` of one evaluation arm by its paper name.

    ``gem_config`` (when given) seeds the shared hyper-parameters; the
    per-arm spec overrides what the arm needs.  Passing a non-default
    ``seed``/``dim`` to an arm with no component that consumes it raises
    (``strict=True``) or warns (``strict=False``) — a sweep must never
    silently reuse one model under many labels.
    """
    ignored = []
    if name in _SEEDLESS_ARMS and seed != _DEFAULT_SEED:
        ignored.append(f"seed={seed}")
    if name in _DIMLESS_ARMS and dim != _DEFAULT_DIM:
        ignored.append(f"dim={dim}")
    if ignored:
        message = (f"arm {name!r} has no component that consumes "
                   f"{' or '.join(ignored)}; the parameter would be silently ignored")
        if strict:
            raise ValueError(message + " (pass the default, or strict=False to "
                             "build the arm anyway)")
        warnings.warn(message, UserWarning, stacklevel=3)

    base = gem_config or GEMConfig()
    bisage_cfg = replace(base.bisage, dim=dim, seed=seed)
    hist = ComponentSpec("histogram", base.histogram.to_dict())
    bisage = ComponentSpec("bisage", {**bisage_cfg.to_dict(),
                                      "weight_offset": base.weight_offset})

    if name == "GEM":
        return PipelineSpec(model=ComponentSpec(
            "gem", replace(base, bisage=bisage_cfg).to_dict()))
    if name == "SignatureHome":
        return PipelineSpec(model=ComponentSpec("signature-home"))
    if name == "INOA":
        return PipelineSpec(model=ComponentSpec("inoa"))
    if name == "GraphSAGE+OD":
        sage_cfg = GraphSAGEConfig(dim=dim, seed=seed,
                                   num_layers=bisage_cfg.num_layers,
                                   sample_size=bisage_cfg.sample_size,
                                   activation=bisage_cfg.activation,
                                   learning_rate=bisage_cfg.learning_rate,
                                   epochs=bisage_cfg.epochs,
                                   batch_pairs=bisage_cfg.batch_pairs,
                                   walk=bisage_cfg.walk)
        return PipelineSpec(
            embedder=ComponentSpec("graphsage", {**sage_cfg.to_dict(),
                                                 "weight_offset": base.weight_offset}),
            detector=hist,
            self_update=base.self_update,
            batch_update_size=base.batch_update_size)
    if name == "Autoencoder+OD":
        return PipelineSpec(
            embedder=ComponentSpec("autoencoder", {"dim": dim, "seed": seed}),
            detector=hist,
            self_update=base.self_update,
            batch_update_size=base.batch_update_size)
    if name == "MDS+OD":
        return PipelineSpec(
            embedder=ComponentSpec("mds", {"dim": dim}),
            detector=hist,
            self_update=base.self_update,
            batch_update_size=base.batch_update_size)
    if name == "BiSAGE+FeatureBagging":
        return PipelineSpec(embedder=bisage,
                            detector=ComponentSpec("feature-bagging", {"seed": seed}),
                            self_update=False)
    if name == "BiSAGE+iForest":
        return PipelineSpec(embedder=bisage,
                            detector=ComponentSpec("iforest", {"seed": seed}),
                            self_update=False)
    if name == "BiSAGE+LOF":
        return PipelineSpec(embedder=bisage, detector=ComponentSpec("lof"),
                            self_update=False)
    if name == "GEM(no-BiSAGE)":
        return PipelineSpec(embedder=ComponentSpec("imputed-matrix"),
                            detector=hist,
                            self_update=base.self_update,
                            batch_update_size=base.batch_update_size)
    if name == "GEM(plain-HBOS)":
        plain = replace(base.histogram, enhanced=False)
        return PipelineSpec(embedder=bisage,
                            detector=ComponentSpec("histogram", plain.to_dict()),
                            self_update=False)
    raise ValueError(f"unknown algorithm {name!r}; known: {ALGORITHM_NAMES}")


# Paper-default spec per arm — the declarative form of Table I / Fig. 7.
ALGORITHM_SPECS: dict[str, PipelineSpec] = {name: arm_spec(name)
                                            for name in ALGORITHM_NAMES}


def make_algorithm(name: str, seed: int = _DEFAULT_SEED, dim: int = _DEFAULT_DIM,
                   gem_config: GEMConfig | None = None):
    """Instantiate one evaluation arm by its paper name.

    Compatibility shim over ``build_pipeline(arm_spec(...))``; sweeps
    passing ``seed``/``dim`` to arms that cannot consume them get a
    :class:`UserWarning` instead of a hard error.
    """
    return build_pipeline(arm_spec(name, seed=seed, dim=dim,
                                   gem_config=gem_config, strict=False))
