"""Factory for every algorithm arm in the paper's evaluation.

Table I compares nine systems; Fig. 7 adds two ablations.  This module
builds each one from a name so the benchmark scripts stay declarative.
All arms share the embedding dimension and seeds so differences come
from the algorithms, not the budgets.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.inoa import INOA
from repro.baselines.signature_home import SignatureHome
from repro.core.config import GEMConfig
from repro.core.embedders import (
    AutoencoderEmbedder,
    BiSAGEEmbedder,
    GraphSAGEEmbedder,
    ImputedMatrixEmbedder,
    MDSEmbedder,
)
from repro.core.gem import GEM, EmbeddingGeofencer
from repro.detection.histogram import HistogramConfig, HistogramDetector
from repro.detection.feature_bagging import FeatureBagging
from repro.detection.iforest import IsolationForest
from repro.detection.lof import LocalOutlierFactor
from repro.embedding.autoencoder import AutoencoderConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.embedding.graphsage import GraphSAGEConfig

__all__ = ["ALGORITHM_NAMES", "make_algorithm"]

ALGORITHM_NAMES = (
    "GEM",
    "SignatureHome",
    "INOA",
    "GraphSAGE+OD",
    "Autoencoder+OD",
    "MDS+OD",
    "BiSAGE+FeatureBagging",
    "BiSAGE+iForest",
    "BiSAGE+LOF",
    "GEM(no-BiSAGE)",     # Fig. 7(a): imputed matrix straight into OD
    "GEM(plain-HBOS)",    # Fig. 7(b): no softmax enhancement, no update
)


def make_algorithm(name: str, seed: int = 0, dim: int = 32,
                   gem_config: GEMConfig | None = None):
    """Instantiate one evaluation arm by its paper name.

    ``gem_config`` (when given) seeds the shared hyper-parameters; the
    per-arm constructor overrides what the arm needs.
    """
    base = gem_config or GEMConfig()
    bisage_cfg = replace(base.bisage, dim=dim, seed=seed)
    hist_cfg = base.histogram

    if name == "GEM":
        return GEM(replace(base, bisage=bisage_cfg))
    if name == "SignatureHome":
        return SignatureHome()
    if name == "INOA":
        return INOA()
    if name == "GraphSAGE+OD":
        sage_cfg = GraphSAGEConfig(dim=dim, seed=seed,
                                   num_layers=bisage_cfg.num_layers,
                                   sample_size=bisage_cfg.sample_size,
                                   activation=bisage_cfg.activation,
                                   learning_rate=bisage_cfg.learning_rate,
                                   epochs=bisage_cfg.epochs,
                                   batch_pairs=bisage_cfg.batch_pairs,
                                   walk=bisage_cfg.walk)
        return EmbeddingGeofencer(GraphSAGEEmbedder(sage_cfg, weight_offset=base.weight_offset),
                                  HistogramDetector(hist_cfg),
                                  self_update=base.self_update,
                                  batch_update_size=base.batch_update_size)
    if name == "Autoencoder+OD":
        return EmbeddingGeofencer(AutoencoderEmbedder(AutoencoderConfig(dim=dim, seed=seed)),
                                  HistogramDetector(hist_cfg),
                                  self_update=base.self_update,
                                  batch_update_size=base.batch_update_size)
    if name == "MDS+OD":
        return EmbeddingGeofencer(MDSEmbedder(dim=dim),
                                  HistogramDetector(hist_cfg),
                                  self_update=base.self_update,
                                  batch_update_size=base.batch_update_size)
    if name == "BiSAGE+FeatureBagging":
        return EmbeddingGeofencer(BiSAGEEmbedder(bisage_cfg, weight_offset=base.weight_offset),
                                  FeatureBagging(seed=seed), self_update=False)
    if name == "BiSAGE+iForest":
        return EmbeddingGeofencer(BiSAGEEmbedder(bisage_cfg, weight_offset=base.weight_offset),
                                  IsolationForest(seed=seed), self_update=False)
    if name == "BiSAGE+LOF":
        return EmbeddingGeofencer(BiSAGEEmbedder(bisage_cfg, weight_offset=base.weight_offset),
                                  LocalOutlierFactor(), self_update=False)
    if name == "GEM(no-BiSAGE)":
        return EmbeddingGeofencer(ImputedMatrixEmbedder(),
                                  HistogramDetector(hist_cfg),
                                  self_update=base.self_update,
                                  batch_update_size=base.batch_update_size)
    if name == "GEM(plain-HBOS)":
        plain = replace(hist_cfg, enhanced=False)
        return EmbeddingGeofencer(BiSAGEEmbedder(bisage_cfg, weight_offset=base.weight_offset),
                                  HistogramDetector(plain), self_update=False)
    raise ValueError(f"unknown algorithm {name!r}; known: {ALGORITHM_NAMES}")
