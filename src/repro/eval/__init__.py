"""Evaluation: metrics, ROC, the streaming harness, timing, reporting."""

from repro.eval.algorithms import (
    ALGORITHM_NAMES,
    ALGORITHM_SPECS,
    arm_accepts,
    arm_spec,
    make_algorithm,
)
from repro.eval.drift import DriftHarness, DriftResult, EpochMetrics
from repro.eval.harness import EvaluationResult, evaluate_streaming, score_stream
from repro.eval.metrics import (
    ConfusionCounts,
    InOutMetrics,
    confusion_from_pairs,
    metrics_from_pairs,
    summarize_metrics,
)
from repro.eval.reporting import format_mean_min_max, format_series, format_table, metrics_row
from repro.eval.roc import RocCurve, auc, finite_scores, roc_curve
from repro.eval.timing import InferenceTiming, measure_batch_update, measure_inference_breakdown

__all__ = [
    "ALGORITHM_NAMES",
    "ALGORITHM_SPECS",
    "arm_accepts",
    "arm_spec",
    "ConfusionCounts",
    "DriftHarness",
    "DriftResult",
    "EpochMetrics",
    "EvaluationResult",
    "InOutMetrics",
    "InferenceTiming",
    "RocCurve",
    "auc",
    "confusion_from_pairs",
    "evaluate_streaming",
    "finite_scores",
    "format_mean_min_max",
    "format_series",
    "format_table",
    "make_algorithm",
    "measure_batch_update",
    "measure_inference_breakdown",
    "metrics_from_pairs",
    "metrics_row",
    "roc_curve",
    "score_stream",
    "summarize_metrics",
]
