"""Streaming drift evaluation over a :class:`~repro.rf.dynamics.DynamicsTimeline`.

The static harness (:mod:`repro.eval.harness`) scores one frozen
snapshot; this one replays *multi-epoch* observation streams through a
model while the world mutates underneath it — AP churn, transmit-power
drift, MAC randomization, transient hotspots, device-gain drift — and
reports the per-epoch trajectory: AUC, false-alarm and missed-breach
rates, and how many online self-updates the model absorbed.  That is
the paper's temporal-robustness story (Fig. 9/10/12/15) run as one
continuous deployment instead of one-shot ablations.

Streams are generated once per epoch and cached, so every arm replayed
through the same :class:`DriftHarness` sees the *identical* byte-level
observation sequence — comparisons measure the models, not the worlds.

Two replay targets:

* any fitted pipeline (``run``), online (``observe``, self-updates on)
  or as a static snapshot (``predict``/``score`` without graph attach);
* a :class:`~repro.serve.fleet.GeofenceFleet` tenant (``run_fleet``),
  which is force-evicted mid-epoch so the checkpoint save/load path is
  exercised under drift — a reloaded tenant must continue exactly where
  the resident one left off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.protocols import GeofenceDecision
from repro.core.records import LabeledRecord, SignalRecord
from repro.eval.roc import finite_scores, roc_curve
from repro.rf.device import Device
from repro.rf.dynamics import DynamicsTimeline, EpochWorld
from repro.rf.scanner import Scanner
from repro.rf.trajectory import perimeter_walk, random_waypoint_walk

__all__ = ["DriftHarness", "DriftResult", "EpochMetrics"]

_DAY_S = 86400.0


@dataclass(frozen=True)
class EpochMetrics:
    """One epoch of a drift trajectory.

    ``fpr`` is the user-facing false-alarm rate — truly-inside records
    predicted outside; ``fnr`` is the missed-breach rate — truly-outside
    records predicted inside.  ``auc`` ranks outlier scores with
    "outside" as the positive class and is ``None`` for a degenerate
    (single-class or empty) epoch.
    """

    epoch: int
    num_records: int
    auc: float | None
    fpr: float
    fnr: float
    updates_buffered: int
    updates_applied: int
    unembeddable: int
    events: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"epoch": self.epoch, "num_records": self.num_records,
                "auc": self.auc, "fpr": self.fpr, "fnr": self.fnr,
                "updates_buffered": self.updates_buffered,
                "updates_applied": self.updates_applied,
                "unembeddable": self.unembeddable,
                "events": list(self.events)}


@dataclass
class DriftResult:
    """A full per-epoch trajectory for one replay target."""

    label: str
    epochs: list[EpochMetrics]
    train_seconds: float = 0.0
    stream_seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    def aucs(self) -> list[float | None]:
        return [m.auc for m in self.epochs]

    def recovery_after(self, shock_epoch: int, tolerance: float = 0.05) -> int | None:
        """Time-to-recovery (in epochs) from a churn shock.

        The pre-shock mean AUC is the baseline.  Damage onset is the
        first epoch at or after the shock whose AUC falls more than
        ``tolerance`` below it; recovery is the first later epoch back
        within tolerance.  Returns ``0`` when the shock never knocked
        the model below tolerance, ``None`` when it never recovers (or
        no pre-shock baseline exists).
        """
        pre = [m.auc for m in self.epochs if m.epoch < shock_epoch and m.auc is not None]
        if not pre:
            return None
        floor = float(np.mean(pre)) - tolerance
        post = [m for m in self.epochs if m.epoch >= shock_epoch and m.auc is not None]
        onset = next((m.epoch for m in post if m.auc < floor), None)
        if onset is None:
            return 0
        for m in post:
            if m.epoch > onset and m.auc >= floor:
                return m.epoch - shock_epoch
        return None

    def time_to_auc(self, threshold: float, after_epoch: int = 0) -> int | None:
        """Epochs from ``after_epoch`` until AUC first reaches ``threshold``.

        The recovery-latency counterpart of :meth:`recovery_after` for
        runs with no meaningful pre-shock baseline (e.g. the worst-case
        replacement arms, where AUC pins to 0.5 and the question is
        *whether and how fast* quarantine recovery lifts it back).
        Returns ``None`` when the trajectory never reaches the
        threshold at or after ``after_epoch``.
        """
        for m in self.epochs:
            if m.epoch >= after_epoch and m.auc is not None and m.auc >= threshold:
                return m.epoch - after_epoch
        return None

    def to_dict(self) -> dict:
        return {"label": self.label,
                "epochs": [m.to_dict() for m in self.epochs],
                "meta": dict(self.meta)}


def _epoch_metrics(world: EpochWorld, labels: list[bool],
                   decisions: list[GeofenceDecision]) -> EpochMetrics:
    inside_total = sum(labels)
    outside_total = len(labels) - inside_total
    false_alarms = sum(1 for label, d in zip(labels, decisions) if label and not d.inside)
    missed = sum(1 for label, d in zip(labels, decisions) if not label and d.inside)
    auc: float | None = None
    if 0 < inside_total < len(labels):
        scores = finite_scores([d.score for d in decisions])
        auc = float(roc_curve(scores, [not label for label in labels]).auc)
    return EpochMetrics(
        epoch=world.epoch, num_records=len(labels), auc=auc,
        fpr=false_alarms / inside_total if inside_total else 0.0,
        fnr=missed / outside_total if outside_total else 0.0,
        updates_buffered=sum(1 for d in decisions if d.buffered),
        updates_applied=sum(1 for d in decisions if d.updated),
        unembeddable=sum(1 for d in decisions if not np.isfinite(d.score)),
        events=world.events)


class DriftHarness:
    """Deterministic multi-epoch streams over one timeline.

    The harness owns stream generation: a training perimeter walk on the
    pristine epoch-0 world, then per epoch a set of alternating
    inside/outside random-waypoint sessions scanned through that epoch's
    mutated environment (with the epoch's device-gain drift applied).
    All streams are pure functions of ``(timeline, seed)`` and cached.
    """

    def __init__(self, timeline: DynamicsTimeline, seed: int = 0,
                 train_duration_s: float = 300.0, train_speed: float = 0.8,
                 sessions_per_epoch: int = 4, session_duration_s: float = 60.0,
                 device: Device = Device(), start_outside: bool = False):
        if sessions_per_epoch < 1:
            raise ValueError("sessions_per_epoch must be >= 1")
        if train_duration_s <= 0 or session_duration_s <= 0:
            raise ValueError("durations must be positive")
        self.timeline = timeline
        self.seed = int(seed)
        self.train_duration_s = float(train_duration_s)
        self.train_speed = float(train_speed)
        self.sessions_per_epoch = int(sessions_per_epoch)
        self.session_duration_s = float(session_duration_s)
        self.device = device
        self.start_outside = bool(start_outside)
        self._train: list[SignalRecord] | None = None
        self._streams: dict[int, list[LabeledRecord]] = {}

    # ------------------------------------------------------------------
    # Stream generation
    # ------------------------------------------------------------------
    def _rng(self, *key: int) -> np.random.Generator:
        return np.random.default_rng(np.random.SeedSequence(self.seed, spawn_key=key))

    def training_records(self) -> list[SignalRecord]:
        """The epoch-0 perimeter walk (the paper's initial training)."""
        if self._train is None:
            scenario = self.timeline.scenario
            world = self.timeline.world(0)
            scanner = Scanner(world.environment, self.device, rng=self._rng(0, 0),
                              device_offset_db=world.device_gain_db)
            region, floor = scenario.perimeter_region
            lap_length = max(region.shrunk(0.5).perimeter, 1.0)
            laps = max(1, round(self.train_duration_s * self.train_speed / lap_length))
            poses = perimeter_walk(region, speed=self.train_speed, laps=laps,
                                   floor=floor)
            self._train = scanner.scan_path(poses[: int(self.train_duration_s)])
        return self._train

    def epoch_records(self, epoch: int) -> list[LabeledRecord]:
        """The labelled observation stream of one epoch (cached)."""
        if epoch not in self._streams:
            scenario = self.timeline.scenario
            world = self.timeline.world(epoch)
            environment = world.environment
            rng = self._rng(epoch, 1)
            scanner = Scanner(environment, self.device, rng=rng,
                              device_offset_db=world.device_gain_db)
            records: list[LabeledRecord] = []
            t0 = epoch * _DAY_S + self.train_duration_s + 300.0
            inside_cursor = outside_cursor = 0
            for session in range(self.sessions_per_epoch):
                outside = (session % 2 == 0) == self.start_outside
                pool = scenario.outside_regions if outside else scenario.inside_regions
                if outside:
                    region, floor = pool[outside_cursor % len(pool)]
                    outside_cursor += 1
                else:
                    region, floor = pool[inside_cursor % len(pool)]
                    inside_cursor += 1
                poses = random_waypoint_walk(region, duration=self.session_duration_s,
                                             floor=floor, start_time=t0, rng=rng)
                for pose in poses:
                    record = scanner.scan(pose)
                    label = environment.is_inside(pose.position, pose.floor)
                    records.append(LabeledRecord(record, inside=label,
                                                 meta={"epoch": epoch, "session": session}))
                t0 = (poses[-1].time if poses else t0 + self.session_duration_s) + 450.0
            self._streams[epoch] = records
        return self._streams[epoch]

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def run(self, model, label: str = "model", online: bool = True,
            fit: bool = True) -> DriftResult:
        """Replay every epoch through ``model``.

        ``online=True`` uses ``observe`` (graph attach + self-update —
        the deployed Algorithm 2); ``online=False`` freezes the trained
        snapshot and replays through side-effect-free ``predict``/
        ``score``, the static baseline the paper's drift claims are
        measured against.
        """
        if not online and not (hasattr(model, "predict") and hasattr(model, "score")):
            raise TypeError(f"{type(model).__name__} exposes no side-effect-free "
                            "predict/score pair; a static-snapshot replay needs one "
                            "(replay it online instead)")
        t0 = time.perf_counter()
        if fit:
            model.fit(self.training_records())
        train_seconds = time.perf_counter() - t0
        epochs: list[EpochMetrics] = []
        t0 = time.perf_counter()
        for world in self.timeline:
            labels, decisions = [], []
            for item in self.epoch_records(world.epoch):
                if online:
                    decision = model.observe(item.record)
                else:
                    # score() defaults to attach=False: no graph growth,
                    # no self-update — a frozen snapshot of train time.
                    decision = GeofenceDecision(
                        inside=model.predict(item.record),
                        score=model.score(item.record))
                labels.append(item.inside)
                decisions.append(decision)
            epochs.append(_epoch_metrics(world, labels, decisions))
        return DriftResult(label=label, epochs=epochs,
                           train_seconds=train_seconds,
                           stream_seconds=time.perf_counter() - t0,
                           meta={"online": online, "seed": self.seed,
                                 "num_epochs": self.timeline.num_epochs})

    def run_fleet(self, fleet, tenant_id: str, label: str | None = None,
                  evict_mid_epoch: bool = True, controller=None) -> DriftResult:
        """Replay every epoch through one fleet tenant (always online).

        The tenant must already be provisioned (typically on
        :meth:`training_records`).  With ``evict_mid_epoch`` the tenant
        is evicted halfway through every epoch *and* at each epoch
        boundary, so the stream repeatedly crosses checkpoint write-back
        and reload — the drift trajectory doubles as a no-drift check on
        the persistence layer.

        ``controller`` hooks the control plane in: a
        :class:`~repro.serve.controller.FleetController` whose
        :meth:`step` is called after every observation, so maintenance
        policies (coordinated refresh, re-provision, flush) execute at
        exactly the points they would in production and their effect on
        the trajectory is measured.  A controller running the no-op
        policy leaves the replay bit-identical to ``controller=None``.
        The per-epoch maintenance actions land in
        ``meta["maintenance"]``; a fleet running a quarantine
        (``quarantine_size > 0``) additionally reports its end-of-epoch
        quarantine depth in ``meta["quarantine_depths"]``.
        """
        epochs: list[EpochMetrics] = []
        actions_by_epoch: dict[int, list[str]] = {}
        quarantine_depths: list[int] = []
        track_quarantine = bool(getattr(fleet, "quarantine_size", 0))
        t0 = time.perf_counter()
        for world in self.timeline:
            records = self.epoch_records(world.epoch)
            labels, decisions = [], []
            halfway = len(records) // 2
            for position, item in enumerate(records):
                if evict_mid_epoch and position == halfway and position > 0:
                    fleet.evict(tenant_id)
                decision = fleet.observe(tenant_id, item.record)
                if controller is not None:
                    acted = controller.step(tenant_id, decision)
                    if acted:
                        actions_by_epoch.setdefault(world.epoch, []).extend(acted)
                decisions.append(decision)
                labels.append(item.inside)
            if track_quarantine:
                # Sampled before the boundary eviction: quarantine_depth
                # reads resident state only (the buffer itself persists
                # through the eviction in checkpoint metadata).
                quarantine_depths.append(fleet.quarantine_depth(tenant_id))
            fleet.evict(tenant_id)
            epochs.append(_epoch_metrics(world, labels, decisions))
        meta = {"online": True, "seed": self.seed,
                "num_epochs": self.timeline.num_epochs,
                "tenant_id": tenant_id}
        if controller is not None:
            meta["maintenance"] = {str(k): v for k, v in sorted(actions_by_epoch.items())}
        if track_quarantine:
            meta["quarantine_depths"] = quarantine_depths
        return DriftResult(label=label or f"fleet:{tenant_id}", epochs=epochs,
                           stream_seconds=time.perf_counter() - t0,
                           meta=meta)
