"""Classification metrics in the paper's notation.

``P_in/R_in/F_in`` treat in-premises records as positives;
``P_out/R_out/F_out`` treat outside records as positives (Sec. V,
"Performance metrics").  Degenerate denominators yield 0.0 (not NaN) so
summaries stay well defined on single-class streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["ConfusionCounts", "InOutMetrics", "confusion_from_pairs", "metrics_from_pairs",
           "summarize_metrics"]


@dataclass(frozen=True)
class ConfusionCounts:
    """Counts with in-premises as the positive class."""

    tp: int = 0  # inside, predicted inside
    fp: int = 0  # outside, predicted inside
    fn: int = 0  # inside, predicted outside
    tn: int = 0  # outside, predicted outside

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0


def _precision(tp: int, fp: int) -> float:
    return tp / (tp + fp) if tp + fp else 0.0


def _recall(tp: int, fn: int) -> float:
    return tp / (tp + fn) if tp + fn else 0.0


def _f_score(precision: float, recall: float) -> float:
    return 2 * precision * recall / (precision + recall) if precision + recall else 0.0


@dataclass(frozen=True)
class InOutMetrics:
    """The six numbers every table in the paper reports."""

    p_in: float
    r_in: float
    f_in: float
    p_out: float
    r_out: float
    f_out: float

    @staticmethod
    def from_confusion(counts: ConfusionCounts) -> "InOutMetrics":
        p_in = _precision(counts.tp, counts.fp)
        r_in = _recall(counts.tp, counts.fn)
        # For the outside view the positive class flips: tn are true
        # positives, fn are false positives, fp are false negatives.
        p_out = _precision(counts.tn, counts.fn)
        r_out = _recall(counts.tn, counts.fp)
        return InOutMetrics(p_in=p_in, r_in=r_in, f_in=_f_score(p_in, r_in),
                            p_out=p_out, r_out=r_out, f_out=_f_score(p_out, r_out))

    def as_row(self) -> tuple[float, float, float, float, float, float]:
        return (self.p_in, self.r_in, self.f_in, self.p_out, self.r_out, self.f_out)


def confusion_from_pairs(pairs: Iterable[tuple[bool, bool]]) -> ConfusionCounts:
    """Build counts from (true_inside, predicted_inside) pairs."""
    tp = fp = fn = tn = 0
    for true_inside, predicted_inside in pairs:
        if true_inside and predicted_inside:
            tp += 1
        elif not true_inside and predicted_inside:
            fp += 1
        elif true_inside and not predicted_inside:
            fn += 1
        else:
            tn += 1
    return ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=tn)


def metrics_from_pairs(pairs: Iterable[tuple[bool, bool]]) -> InOutMetrics:
    return InOutMetrics.from_confusion(confusion_from_pairs(pairs))


def summarize_metrics(metrics: Sequence[InOutMetrics]) -> dict[str, tuple[float, float, float]]:
    """Per-field (mean, min, max) across runs — the Table I entry format."""
    if not metrics:
        raise ValueError("no metrics to summarise")
    out: dict[str, tuple[float, float, float]] = {}
    for name in ("p_in", "r_in", "f_in", "p_out", "r_out", "f_out"):
        values = [getattr(m, name) for m in metrics]
        out[name] = (sum(values) / len(values), min(values), max(values))
    return out
