"""Dataset generation: scenario -> training records + labelled test stream.

Reproduces the paper's collection protocol (Sec. V):

* **initial training** — the user walks the inner perimeter of the
  geofenced area for a few minutes (~1 Hz scans, 0.8 m/s default);
* **testing** — the user "behaves as he/she wishes": alternating
  sessions inside and outside the area, streamed in temporal order so
  the online self-update sees a realistic sequence.

Ground-truth labels come from the environment geometry, not from the
session intent, so records straddling the boundary are labelled by where
the device actually was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.records import LabeledRecord, SignalRecord, unique_macs
from repro.rf.device import Device
from repro.rf.scanner import Scanner
from repro.rf.scenarios import SiteScenario
from repro.rf.trajectory import perimeter_walk, random_waypoint_walk
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import check_positive

__all__ = ["GeofenceDataset", "generate_dataset", "remove_macs"]


@dataclass
class GeofenceDataset:
    """Everything one experiment needs."""

    scenario: SiteScenario
    train: list[SignalRecord]
    test: list[LabeledRecord]
    meta: dict = field(default_factory=dict)

    @property
    def num_macs_seen(self) -> int:
        """Distinct MACs across training records (the Table II column)."""
        return len(unique_macs(self.train))

    def test_inside_fraction(self) -> float:
        if not self.test:
            return 0.0
        return sum(1 for item in self.test if item.inside) / len(self.test)


def generate_dataset(scenario: SiteScenario, seed: int = 0,
                     train_duration_s: float = 420.0,
                     train_speed: float = 0.8,
                     test_sessions: int = 8,
                     session_duration_s: float = 150.0,
                     device: Device = Device(),
                     crowd_penalty_db: float = 0.0,
                     extra_fading_db: float = 0.0,
                     start_outside: bool = False) -> GeofenceDataset:
    """Build one train/test dataset from a scenario.

    ``train_duration_s`` defaults to 7 minutes (the paper's 5–10 minute
    walk); test sessions alternate inside/outside regions.
    """
    check_positive(train_duration_s, "train_duration_s")
    check_positive(session_duration_s, "session_duration_s")
    if test_sessions < 1:
        raise ValueError("test_sessions must be >= 1")
    rng_train, rng_test, _ = spawn_rngs(seed, 3)
    environment = scenario.environment

    # ---------------- training: inner-perimeter walk --------------------
    # The walk covers every geofenced floor (a two-storey house trains on
    # both floors), splitting the time budget evenly.
    train_floors = scenario.inside_regions or [scenario.perimeter_region]
    per_floor_duration = train_duration_s / len(train_floors)
    scanner = Scanner(environment, device, rng=rng_train,
                      crowd_penalty_db=crowd_penalty_db,
                      extra_fading_db=extra_fading_db)
    train_poses = []
    t_start = 0.0
    for region, floor in train_floors:
        perimeter_length = max(region.shrunk(0.5).perimeter, 1.0)
        laps = max(1, round(per_floor_duration * train_speed / perimeter_length))
        poses = perimeter_walk(region, speed=train_speed, laps=laps, floor=floor,
                               start_time=t_start)
        poses = poses[: int(per_floor_duration)]
        train_poses.extend(poses)
        t_start = poses[-1].time + 20.0 if poses else t_start + per_floor_duration
    train_records = scanner.scan_path(train_poses)

    # ---------------- testing: alternating sessions ---------------------
    # Sessions are spread over a multi-hour window (the paper's "whole
    # process lasts about three hours"), so the slow RF drift between
    # training time and late test sessions is part of the task.
    test_scanner = Scanner(environment, device, rng=rng_test,
                           crowd_penalty_db=crowd_penalty_db,
                           extra_fading_db=extra_fading_db)
    test: list[LabeledRecord] = []
    t0 = train_poses[-1].time + 300.0 if train_poses else 300.0
    inside_cursor = outside_cursor = 0
    for session in range(test_sessions):
        outside = (session % 2 == 0) == start_outside
        pool = scenario.inside_regions if not outside else scenario.outside_regions
        # Round-robin through the regions so every dataset exercises both
        # boundary areas (corridor) and genuinely-away areas.
        if outside:
            region, floor = pool[outside_cursor % len(pool)]
            outside_cursor += 1
        else:
            region, floor = pool[inside_cursor % len(pool)]
            inside_cursor += 1
        poses = random_waypoint_walk(region, duration=session_duration_s,
                                     floor=floor, start_time=t0, rng=rng_test)
        for pose in poses:
            record = test_scanner.scan(pose)
            label = environment.is_inside(pose.position, pose.floor)
            test.append(LabeledRecord(record, inside=label,
                                      meta={"session": session, "intended_outside": outside}))
        t0 = (poses[-1].time if poses else t0 + session_duration_s) + 450.0

    return GeofenceDataset(scenario=scenario, train=train_records, test=test,
                           meta={"seed": seed, "train_duration_s": train_duration_s,
                                 "train_speed": train_speed,
                                 "test_sessions": test_sessions})


def remove_macs(dataset: GeofenceDataset, fraction: float, seed: int = 0,
                which: str = "train") -> GeofenceDataset:
    """Randomly prune a fraction of MACs from train or test (Fig. 9/10).

    The MAC universe is taken from the whole dataset; the chosen MACs are
    removed from the requested split only, the other split is untouched.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if which not in ("train", "test"):
        raise ValueError(f"which must be 'train' or 'test', got {which!r}")
    rng = as_rng(seed)
    universe = sorted(unique_macs(dataset.train) | unique_macs(r.record for r in dataset.test))
    count = int(round(fraction * len(universe)))
    doomed = set(rng.choice(universe, size=count, replace=False)) if count else set()

    if which == "train":
        train = [record.without(doomed) for record in dataset.train]
        test = list(dataset.test)
    else:
        train = list(dataset.train)
        test = [LabeledRecord(item.record.without(doomed), item.inside, item.meta)
                for item in dataset.test]
    return GeofenceDataset(scenario=dataset.scenario, train=train, test=test,
                           meta={**dataset.meta, "removed_macs": len(doomed), "removed_from": which})
