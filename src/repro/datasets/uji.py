"""UJIIndoorLoc-style experiments (Tables V–VII).

The paper's protocol on the public UJI dataset: per building, the middle
floor is the geofenced area; half of its records (uniformly sampled)
train the model and everything else streams as test data.

Two sources are supported:

* :func:`load_uji_csv` parses the real ``trainingData.csv`` from the
  UJIIndoorLoc Kaggle release (RSS value 100 = "not detected"; WAP
  columns are named WAP001..WAP520) — for users who have the file;
* :func:`uji_like_dataset` synthesises a corpus with the same shape
  (3 buildings × 4–5 floors, a large shared MAC universe, sparse
  records) through the RF simulator, so the offline benches can run the
  same experiment end to end.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.records import LabeledRecord, SignalRecord
from repro.datasets.synthetic import GeofenceDataset
from repro.rf.device import Device
from repro.rf.scanner import Scanner
from repro.rf.scenarios import SiteScenario, multi_floor_building
from repro.rf.trajectory import random_waypoint_walk
from repro.utils.rng import as_rng, spawn_rngs

__all__ = ["load_uji_csv", "uji_building_split", "uji_like_dataset", "uji_like_scenario"]

_NOT_DETECTED = 100


def load_uji_csv(path: str | Path) -> list[dict]:
    """Parse a UJIIndoorLoc CSV into dicts with record/floor/building.

    Each row becomes ``{"record": SignalRecord, "floor": int,
    "building": int}``.  WAP columns equal to 100 are missing readings.
    """
    path = Path(path)
    rows: list[dict] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        wap_columns = [name for name in reader.fieldnames or [] if name.upper().startswith("WAP")]
        if not wap_columns:
            raise ValueError(f"{path} has no WAP columns; not a UJIIndoorLoc file")
        for line in reader:
            readings = {}
            for wap in wap_columns:
                value = int(float(line[wap]))
                if value != _NOT_DETECTED:
                    readings[wap] = float(value)
            rows.append({
                "record": SignalRecord(readings, timestamp=float(line.get("TIMESTAMP", 0) or 0)),
                "floor": int(float(line["FLOOR"])),
                "building": int(float(line["BUILDINGID"])),
            })
    return rows


def uji_building_split(rows: list[dict], building: int, seed: int = 0,
                       train_fraction: float = 0.5) -> tuple[list[SignalRecord], list[LabeledRecord]]:
    """Apply the paper's per-building protocol to parsed UJI rows.

    The middle floor of the building is the geofence; ``train_fraction``
    of its records (uniform sample) form the training set and every
    remaining record of the building streams as test data.
    """
    rng = as_rng(seed)
    building_rows = [row for row in rows if row["building"] == building]
    if not building_rows:
        raise ValueError(f"no rows for building {building}")
    floors = sorted({row["floor"] for row in building_rows})
    middle = floors[len(floors) // 2]
    middle_rows = [row for row in building_rows if row["floor"] == middle]
    n_train = max(1, int(len(middle_rows) * train_fraction))
    chosen = set(rng.choice(len(middle_rows), size=n_train, replace=False))
    train = [row["record"] for i, row in enumerate(middle_rows) if i in chosen]
    train_ids = {id(row["record"]) for i, row in enumerate(middle_rows) if i in chosen}
    test = [LabeledRecord(row["record"], inside=(row["floor"] == middle),
                          meta={"floor": row["floor"]})
            for row in building_rows if id(row["record"]) not in train_ids]
    return train, test


from repro.rf.materials import Material

# The UJI campus buildings have interior patios/stairwells; effective
# floor separation is between a mall atrium and a solid slab.
_CAMPUS_SLAB = Material("campus-patio-slab", 11.0, 15.0)


def uji_like_scenario(building: int, seed: int = 0) -> SiteScenario:
    """A synthetic UJI-style university building."""
    # Buildings 0/1 have 4 floors, building 2 has 5 (as in the real corpus).
    num_floors = 5 if building == 2 else 4
    return multi_floor_building(num_floors=num_floors, width=80.0, depth=30.0,
                                aps_per_floor=14, geofence_floor=num_floors // 2,
                                seed=seed + 31 * building,
                                name=f"uji-building-{building}",
                                interior_walls_per_floor=8,
                                floor_material=_CAMPUS_SLAB)


def uji_like_dataset(building: int, seed: int = 0,
                     records_per_floor: int = 160,
                     train_fraction: float = 0.5) -> GeofenceDataset:
    """Synthetic UJI-building dataset following the paper's split.

    Records are collected by random-waypoint walks on every floor; the
    middle floor's records are split train/test by ``train_fraction``,
    other floors are all test (outside).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    scenario = uji_like_scenario(building, seed=seed)
    environment = scenario.environment
    geofence_floor = scenario.extras["geofence_floor"]
    num_floors = scenario.extras["num_floors"]
    rng_scan, rng_split, rng_devices = spawn_rngs(seed + 7, 3)
    footprint = scenario.perimeter_region[0]

    # UJIIndoorLoc is crowdsourced from many phone models: emulate with a
    # pool of scanners whose RSS calibration offsets differ, collecting in
    # chunks spread over hours.
    device_offsets = rng_devices.normal(0.0, 4.0, size=5)
    scanners = [Scanner(environment, Device(), rng=rng_scan,
                        device_offset_db=float(offset)) for offset in device_offsets]

    # Floors are surveyed in interleaved chunks (crowdsourced collection is
    # not floor-ordered), each chunk by a random device from the pool.
    per_floor_records: dict[int, list[SignalRecord]] = {floor: [] for floor in range(num_floors)}
    t0 = 0.0
    chunk = 40
    while any(len(records) < records_per_floor for records in per_floor_records.values()):
        for floor in range(num_floors):
            need = min(chunk, records_per_floor - len(per_floor_records[floor]))
            if need <= 0:
                continue
            walk = random_waypoint_walk(footprint, duration=need, speed=1.0,
                                        floor=floor, start_time=t0, rng=rng_scan)
            scanner = scanners[int(rng_devices.integers(0, len(scanners)))]
            per_floor_records[floor].extend(scanner.scan_path(walk[:need]))
            t0 = walk[-1].time + 600.0

    middle_records = per_floor_records[geofence_floor]
    n_train = max(1, int(len(middle_records) * train_fraction))
    chosen = set(rng_split.choice(len(middle_records), size=n_train, replace=False))
    train = [record for i, record in enumerate(middle_records) if i in chosen]
    test: list[LabeledRecord] = []
    for floor in range(num_floors):
        for i, record in enumerate(per_floor_records[floor]):
            if floor == geofence_floor and i in chosen:
                continue
            test.append(LabeledRecord(record, inside=(floor == geofence_floor),
                                      meta={"floor": floor}))
    # Stream in timestamp order, mimicking the dynamic-testing protocol.
    test.sort(key=lambda item: item.record.timestamp)
    return GeofenceDataset(scenario=scenario, train=train, test=test,
                           meta={"seed": seed, "kind": "uji-like", "building": building,
                                 "geofence_floor": geofence_floor})
