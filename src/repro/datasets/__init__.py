"""Dataset generators and loaders for every evaluation scenario."""

from repro.datasets.mall import mall_dataset, mall_scenario
from repro.datasets.synthetic import GeofenceDataset, generate_dataset, remove_macs
from repro.datasets.uji import (
    load_uji_csv,
    uji_building_split,
    uji_like_dataset,
    uji_like_scenario,
)
from repro.datasets.users import USER_SPECS, UserSpec, user_dataset, user_scenario

__all__ = [
    "GeofenceDataset",
    "USER_SPECS",
    "UserSpec",
    "generate_dataset",
    "load_uji_csv",
    "mall_dataset",
    "mall_scenario",
    "remove_macs",
    "uji_building_split",
    "uji_like_dataset",
    "uji_like_scenario",
    "user_dataset",
    "user_scenario",
]
