"""The ten-user study worlds (Table II).

Each user in the paper carried a phone or watch in a different home:
areas 10–200 m², between 12 and 73 ambient MACs sensed.  The specs
below reconstruct those worlds: AP counts are tuned so the *sensed*
MAC count lands near the paper's column (each AP carries one or two
MACs depending on its bands, and weak far APs are heard sporadically).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.synthetic import GeofenceDataset, generate_dataset
from repro.rf.scenarios import SiteScenario, home_scenario

__all__ = ["UserSpec", "USER_SPECS", "user_scenario", "user_dataset"]


@dataclass(frozen=True)
class UserSpec:
    """One row of Table II, as generation parameters."""

    user_id: int
    area_m2: float
    paper_macs: int          # the #MACs column of Table II
    aps_inside: int
    aps_near: int
    aps_far: int
    detached: bool = False


# aps_* counts chosen so sensed MAC counts approximate the paper's column.
USER_SPECS: list[UserSpec] = [
    UserSpec(1, 10.0, 20, aps_inside=1, aps_near=7, aps_far=4),
    UserSpec(2, 10.0, 26, aps_inside=1, aps_near=10, aps_far=5),
    UserSpec(3, 50.0, 33, aps_inside=1, aps_near=13, aps_far=6),
    UserSpec(4, 50.0, 16, aps_inside=1, aps_near=5, aps_far=4),
    UserSpec(5, 50.0, 20, aps_inside=1, aps_near=7, aps_far=4),
    UserSpec(6, 100.0, 65, aps_inside=2, aps_near=26, aps_far=10),
    UserSpec(7, 100.0, 45, aps_inside=2, aps_near=17, aps_far=8),
    UserSpec(8, 100.0, 73, aps_inside=2, aps_near=30, aps_far=11),
    UserSpec(9, 100.0, 57, aps_inside=2, aps_near=22, aps_far=9),
    UserSpec(10, 200.0, 12, aps_inside=2, aps_near=4, aps_far=3, detached=True),
]


def user_scenario(user_id: int, seed: int | None = None) -> SiteScenario:
    """The simulated world of one Table II user."""
    spec = _spec(user_id)
    scenario_seed = seed if seed is not None else 1000 + user_id
    return home_scenario(area_m2=spec.area_m2, aps_inside=spec.aps_inside,
                         aps_near=spec.aps_near, aps_far=spec.aps_far,
                         detached=spec.detached, seed=scenario_seed,
                         name=f"user-{user_id}")


def user_dataset(user_id: int, seed: int | None = None, **generate_kwargs) -> GeofenceDataset:
    """Train/test dataset for one user, with the paper's walk protocol."""
    spec = _spec(user_id)
    data_seed = seed if seed is not None else 2000 + user_id
    scenario = user_scenario(user_id, seed=None if seed is None else seed + 17)
    dataset = generate_dataset(scenario, seed=data_seed, **generate_kwargs)
    dataset.meta["user_id"] = user_id
    dataset.meta["paper_macs"] = spec.paper_macs
    dataset.meta["area_m2"] = spec.area_m2
    return dataset


def _spec(user_id: int) -> UserSpec:
    for spec in USER_SPECS:
        if spec.user_id == user_id:
            return spec
    raise ValueError(f"unknown user id {user_id}; valid ids are 1..{len(USER_SPECS)}")
