"""The five-storey shopping-mall dataset (Table IV).

The paper walked the third (middle) floor of a five-storey mall to
collect ~5,000 training records, then walked the whole building for
~200,000 test records.  We synthesise the same *structure* at laptop
scale: the middle floor is the geofence, other floors are outside, and
APs leak across floor slabs — configurable record counts keep the bench
fast while preserving the confusion pattern.
"""

from __future__ import annotations

from repro.core.records import LabeledRecord
from repro.datasets.synthetic import GeofenceDataset
from repro.rf.device import Device
from repro.rf.scanner import Scanner
from repro.rf.scenarios import SiteScenario, multi_floor_building
from repro.rf.trajectory import perimeter_walk, random_waypoint_walk
from repro.utils.rng import spawn_rngs

__all__ = ["mall_scenario", "mall_dataset"]


from repro.rf.materials import Material

# Malls have open atria spanning several floors: the *effective* floor
# separation is weaker than a solid slab (calibrated so the cross-floor
# confusion matches the Table IV regime).
_MALL_SLAB = Material("mall-atrium-slab", 13.5, 19.0)


def mall_scenario(seed: int = 0, aps_per_floor: int = 12) -> SiteScenario:
    """Five floors, geofence = floor 2 (the paper's third floor)."""
    return multi_floor_building(num_floors=5, width=60.0, depth=40.0,
                                aps_per_floor=aps_per_floor, geofence_floor=2,
                                seed=seed, name="shopping-mall",
                                interior_walls_per_floor=6,
                                floor_material=_MALL_SLAB)


def mall_dataset(seed: int = 0, train_records: int = 800,
                 test_records_per_floor: int = 150,
                 aps_per_floor: int = 12) -> GeofenceDataset:
    """Scaled-down mall experiment with the paper's collection pattern."""
    if train_records < 10:
        raise ValueError("train_records must be at least 10")
    scenario = mall_scenario(seed=seed, aps_per_floor=aps_per_floor)
    environment = scenario.environment
    geofence_floor = scenario.extras["geofence_floor"]
    num_floors = scenario.extras["num_floors"]
    rng_train, rng_test = spawn_rngs(seed + 1, 2)
    device = Device()

    footprint = scenario.perimeter_region[0]
    # Mall crowds attenuate signals by several dB and vary by hour; the
    # training walk happens at one (moderate) crowd level.
    scanner = Scanner(environment, device, rng=rng_train, crowd_penalty_db=3.0)
    # Perimeter walk plus interior random waypoints on the geofenced floor.
    poses = perimeter_walk(footprint, speed=1.0, laps=3, inset=2.0, floor=geofence_floor)
    poses += random_waypoint_walk(footprint, duration=max(train_records - len(poses), 60),
                                  speed=1.0, floor=geofence_floor,
                                  start_time=poses[-1].time + 5.0, rng=rng_train)
    train = scanner.scan_path(poses[:train_records])

    test: list[LabeledRecord] = []
    # The paper "walks randomly within the five-story building": floors are
    # visited in interleaved chunks over a multi-hour span, so inside
    # records keep arriving throughout the stream (feeding the online
    # update) while slow RF drift accumulates and the crowd level swings
    # with the time of day.
    t0 = poses[-1].time + 1800.0
    remaining = {floor: test_records_per_floor for floor in range(num_floors)}
    chunk = max(10, test_records_per_floor // 5)
    while any(remaining.values()):
        crowd = float(rng_test.uniform(0.0, 8.0))
        chunk_scanner = Scanner(environment, device, rng=rng_test,
                                crowd_penalty_db=crowd)
        for floor in range(num_floors):
            need = min(chunk, remaining[floor])
            if need <= 0:
                continue
            walk = random_waypoint_walk(footprint, duration=need, speed=1.0,
                                        floor=floor, start_time=t0, rng=rng_test)
            for pose in walk[:need]:
                record = chunk_scanner.scan(pose)
                test.append(LabeledRecord(record, inside=(floor == geofence_floor),
                                          meta={"floor": floor, "crowd_db": crowd}))
            remaining[floor] -= need
            t0 = walk[-1].time + 300.0

    return GeofenceDataset(scenario=scenario, train=train, test=test,
                           meta={"seed": seed, "kind": "mall",
                                 "geofence_floor": geofence_floor})
