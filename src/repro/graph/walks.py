"""Weighted random walks over the bipartite graph.

Training pairs for the BiSAGE loss (Eq. 9) come from random walks whose
transition probability out of a node is proportional to edge weight
(Sec. III-B): ``Pr(x_{k+1} | x_k) = w / sum(w)``.  On a bipartite graph
a walk alternates partitions, so *consecutive* walk nodes are always of
opposite types — which is exactly why the loss pairs a node's primary
embedding with its walk-neighbour's auxiliary embedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import MAC, RECORD, WeightedBipartiteGraph
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int

__all__ = ["WalkConfig", "RandomWalker", "walk_pairs"]


@dataclass(frozen=True)
class WalkConfig:
    """Random-walk corpus parameters.

    ``walks_per_node`` walks of ``walk_length`` steps start from every
    non-isolated node; ``window`` controls how far apart two walk nodes
    may be to form a training pair (1 = consecutive only, as the paper
    describes).
    """

    walk_length: int = 6
    walks_per_node: int = 4
    window: int = 1

    def __post_init__(self):
        check_positive_int(self.walk_length, "walk_length")
        check_positive_int(self.walks_per_node, "walks_per_node")
        check_positive_int(self.window, "window")

    @classmethod
    def from_dict(cls, data: dict) -> "WalkConfig":
        return cls(**{k: int(v) for k, v in data.items()})


class RandomWalker:
    """Generates weighted random walks on a bipartite graph."""

    def __init__(self, graph: WeightedBipartiteGraph, config: WalkConfig = WalkConfig(), rng=None):
        self.graph = graph
        self.config = config
        self.rng = as_rng(rng)

    def walk_from(self, side: str, index: int) -> list[tuple[str, int]]:
        """One weighted walk of ``walk_length`` nodes starting at (side, index)."""
        path = [(side, index)]
        current_side, current_index = side, index
        for _ in range(self.config.walk_length - 1):
            neighbors, weights = self.graph.neighbors(current_side, current_index)
            if len(neighbors) == 0:
                break
            probabilities = weights / weights.sum()
            step = self.rng.choice(len(neighbors), p=probabilities)
            current_side = MAC if current_side == RECORD else RECORD
            current_index = int(neighbors[step])
            path.append((current_side, current_index))
        return path

    def corpus(self) -> list[list[tuple[str, int]]]:
        """Walks from every non-isolated node, ``walks_per_node`` times."""
        walks = []
        for side, index in self.graph.nodes():
            if self.graph.degree(side, index) == 0:
                continue
            for _ in range(self.config.walks_per_node):
                walks.append(self.walk_from(side, index))
        return walks


def walk_pairs(walks, window: int = 1) -> list[tuple[tuple[str, int], tuple[str, int]]]:
    """Extract (x, y) co-occurrence pairs within ``window`` steps.

    With ``window=1`` only consecutive nodes pair up, matching the loss
    description; larger windows are exposed for ablations.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    pairs = []
    for walk in walks:
        for i, x in enumerate(walk):
            for j in range(i + 1, min(i + window + 1, len(walk))):
                pairs.append((x, walk[j]))
    return pairs
