"""A dynamic weighted bipartite graph of signal records and MACs.

Partition ``U`` holds signal-record nodes, partition ``V`` holds sensed
MAC-address nodes (Sec. III-A).  The graph supports the online regime of
Sec. IV: new record nodes (and previously unseen MAC nodes) can be
appended at any time, which is what makes BiSAGE's inductive embedding
prediction possible.

Nodes are referred to by ``(side, index)`` pairs where ``side`` is
:data:`RECORD` (``"U"``) or :data:`MAC` (``"V"``) and indices are dense
per-partition integers assigned in insertion order.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.records import SignalRecord

__all__ = ["RECORD", "MAC", "NodeRef", "WeightedBipartiteGraph"]

RECORD = "U"
MAC = "V"

NodeRef = tuple  # (side, index)


class WeightedBipartiteGraph:
    """Adjacency-list weighted bipartite graph.

    Parameters
    ----------
    weight_offset:
        The constant ``c`` of Eq. 2; edge weight is ``RSS + c`` and must
        come out strictly positive (the paper uses c = 120 dBm).
    """

    def __init__(self, weight_offset: float = 120.0):
        if weight_offset <= 0:
            raise ValueError(f"weight_offset must be positive, got {weight_offset}")
        self.weight_offset = float(weight_offset)
        self._mac_index: dict[str, int] = {}
        self._mac_names: list[str] = []
        # adjacency: per record node, parallel arrays of mac indices / weights
        self._record_neighbors: list[np.ndarray] = []
        self._record_weights: list[np.ndarray] = []
        # reverse adjacency built incrementally as python lists
        self._mac_neighbors: list[list[int]] = []
        self._mac_weights: list[list[float]] = []
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def edge_weight_of_rss(self, rss: float) -> float:
        """Eq. 1–2: ``w = f(RSS) = RSS + c``, validated positive."""
        weight = rss + self.weight_offset
        if weight <= 0:
            raise ValueError(
                f"RSS {rss} with offset {self.weight_offset} gives non-positive weight; "
                "increase weight_offset (paper: c > max |RSS|)"
            )
        return weight

    def add_record(self, record: SignalRecord) -> int:
        """Append a record node with edges to its sensed MACs.

        Unseen MAC addresses are added as new ``V`` nodes (the dynamic
        behaviour of Sec. III-A/IV-A).  Returns the new record index.
        Empty records are allowed as isolated nodes; GEM treats them as
        outliers upstream.
        """
        record_idx = len(self._record_neighbors)
        mac_indices = []
        weights = []
        for mac, rss in record.readings.items():
            mac_idx = self._mac_index.get(mac)
            if mac_idx is None:
                mac_idx = self._intern_mac(mac)
            weight = self.edge_weight_of_rss(rss)
            mac_indices.append(mac_idx)
            weights.append(weight)
            self._mac_neighbors[mac_idx].append(record_idx)
            self._mac_weights[mac_idx].append(weight)
        self._record_neighbors.append(np.asarray(mac_indices, dtype=np.int64))
        self._record_weights.append(np.asarray(weights, dtype=np.float64))
        self._num_edges += len(mac_indices)
        return record_idx

    def add_records(self, records: Iterable[SignalRecord]) -> list[int]:
        return [self.add_record(record) for record in records]

    def _intern_mac(self, mac: str) -> int:
        idx = len(self._mac_names)
        self._mac_index[mac] = idx
        self._mac_names.append(mac)
        self._mac_neighbors.append([])
        self._mac_weights.append([])
        return idx

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return len(self._record_neighbors)

    @property
    def num_macs(self) -> int:
        return len(self._mac_names)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def mac_name(self, index: int) -> str:
        return self._mac_names[index]

    def mac_index(self, mac: str) -> int | None:
        """Index of a MAC node, or None if never seen."""
        return self._mac_index.get(mac)

    def known_macs(self) -> set[str]:
        return set(self._mac_index)

    def neighbors(self, side: str, index: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor indices in the other partition, edge weights)."""
        if side == RECORD:
            return self._record_neighbors[index], self._record_weights[index]
        if side == MAC:
            return (np.asarray(self._mac_neighbors[index], dtype=np.int64),
                    np.asarray(self._mac_weights[index], dtype=np.float64))
        raise ValueError(f"side must be {RECORD!r} or {MAC!r}, got {side!r}")

    def degree(self, side: str, index: int) -> int:
        neighbors, _ = self.neighbors(side, index)
        return len(neighbors)

    def weighted_degree(self, side: str, index: int) -> float:
        _, weights = self.neighbors(side, index)
        return float(weights.sum()) if len(weights) else 0.0

    def nodes(self) -> Iterator[NodeRef]:
        """All nodes, records first then MACs."""
        for i in range(self.num_records):
            yield (RECORD, i)
        for j in range(self.num_macs):
            yield (MAC, j)

    def degrees(self) -> tuple[np.ndarray, np.ndarray]:
        """(record degrees, MAC degrees) as arrays."""
        record_deg = np.asarray([len(n) for n in self._record_neighbors], dtype=np.int64)
        mac_deg = np.asarray([len(n) for n in self._mac_neighbors], dtype=np.int64)
        return record_deg, mac_deg

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """All (record index, mac index, weight) triples."""
        for u, (neighbors, weights) in enumerate(zip(self._record_neighbors, self._record_weights)):
            for v, w in zip(neighbors, weights):
                yield u, int(v), float(w)

    def record_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat COO arrays (record_rows, mac_cols, weights) over all edges."""
        if self._num_edges == 0:
            empty = np.empty(0)
            return empty.astype(np.int64), empty.astype(np.int64), empty
        rows = np.concatenate([
            np.full(len(neigh), u, dtype=np.int64)
            for u, neigh in enumerate(self._record_neighbors) if len(neigh)
        ]) if any(len(n) for n in self._record_neighbors) else np.empty(0, dtype=np.int64)
        cols = np.concatenate([n for n in self._record_neighbors if len(n)])
        weights = np.concatenate([w for w in self._record_weights if len(w)])
        return rows, cols, weights

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: flat edge arrays + the MAC name table.

        Edges are stored record-major as ``(record_indptr, edge_macs,
        edge_weights)`` — record ``u``'s edges occupy the slice
        ``record_indptr[u]:record_indptr[u+1]``.  The reverse (MAC-side)
        adjacency is derived, so it is rebuilt on load rather than saved.
        """
        record_deg, _ = self.degrees()
        indptr = np.zeros(self.num_records + 1, dtype=np.int64)
        np.cumsum(record_deg, out=indptr[1:])
        _, edge_macs, edge_weights = self.record_adjacency()
        return {
            "weight_offset": self.weight_offset,
            "mac_names": list(self._mac_names),
            "record_indptr": indptr,
            "edge_macs": edge_macs,
            "edge_weights": edge_weights,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "WeightedBipartiteGraph":
        """Rebuild a graph saved by :meth:`state_dict`."""
        graph = cls(weight_offset=float(state["weight_offset"]))
        for mac in state["mac_names"]:
            graph._intern_mac(str(mac))
        indptr = np.asarray(state["record_indptr"], dtype=np.int64)
        edge_macs = np.asarray(state["edge_macs"], dtype=np.int64)
        edge_weights = np.asarray(state["edge_weights"], dtype=np.float64)
        if (len(edge_macs) != len(edge_weights)
                or len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(edge_macs)
                or (np.diff(indptr) < 0).any()):
            raise ValueError("graph state has inconsistent edge arrays")
        if len(edge_macs) and (edge_macs.min() < 0 or edge_macs.max() >= graph.num_macs):
            raise ValueError("graph state references a MAC index outside the name table")
        for u in range(len(indptr) - 1):
            lo, hi = indptr[u], indptr[u + 1]
            macs = edge_macs[lo:hi].copy()
            weights = edge_weights[lo:hi].copy()
            graph._record_neighbors.append(macs)
            graph._record_weights.append(weights)
            for mac_idx, weight in zip(macs, weights):
                graph._mac_neighbors[mac_idx].append(u)
                graph._mac_weights[mac_idx].append(float(weight))
            graph._num_edges += len(macs)
        graph.validate()
        return graph

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on violation."""
        forward = sum(len(n) for n in self._record_neighbors)
        backward = sum(len(n) for n in self._mac_neighbors)
        assert forward == backward == self._num_edges, "edge bookkeeping out of sync"
        for u, (neighbors, weights) in enumerate(zip(self._record_neighbors, self._record_weights)):
            assert len(neighbors) == len(weights), f"record {u} has mismatched arrays"
            assert (weights > 0).all(), f"record {u} has non-positive edge weight"
            assert (neighbors < self.num_macs).all(), f"record {u} references unknown MAC"
