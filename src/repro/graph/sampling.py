"""Weighted neighbour sampling and degree-biased negative sampling.

Two sampling primitives drive BiSAGE (Sec. III-B):

* **neighbour sampling** — when aggregating towards a target node, each
  neighbour is drawn with probability proportional to its edge weight
  (``Pr(v) = w_uv / sum w_uv'``), implementing the paper's "attention by
  edge weight";
* **negative sampling** — the loss (Eq. 9) draws contrast nodes from the
  whole graph with ``Pr(z) ∝ deg(z)^{3/4}`` (word2vec convention).

An alias table gives O(1) categorical draws; it is rebuilt lazily when
the graph has grown.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import MAC, RECORD, WeightedBipartiteGraph
from repro.utils.rng import as_rng

__all__ = ["AliasTable", "WeightedNeighborSampler", "NegativeSampler"]


class AliasTable:
    """Walker's alias method for O(1) sampling from a fixed categorical."""

    def __init__(self, weights):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        n = weights.size
        self.n = n
        self.probabilities = np.asarray(weights / total)
        scaled = self.probabilities * n
        self._accept = np.zeros(n, dtype=np.float64)
        self._alias = np.zeros(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            self._accept[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for leftover in small + large:
            self._accept[leftover] = 1.0
            self._alias[leftover] = leftover

    def sample(self, rng, size: int | None = None) -> np.ndarray | int:
        rng = as_rng(rng)
        n_draws = 1 if size is None else int(size)
        columns = rng.integers(0, self.n, size=n_draws)
        coins = rng.random(n_draws)
        accepted = coins < self._accept[columns]
        out = np.where(accepted, columns, self._alias[columns])
        return int(out[0]) if size is None else out


class WeightedNeighborSampler:
    """Sample ``N_s(i)`` neighbourhoods proportional to edge weight.

    Sampling is with replacement (as in GraphSAGE); a node with fewer
    neighbours than the sample size simply contributes repeats, which the
    weighted-mean aggregator (Eq. 8) then de-duplicates by construction.
    """

    def __init__(self, graph: WeightedBipartiteGraph, sample_size: int, rng=None):
        if sample_size <= 0:
            raise ValueError(f"sample_size must be positive, got {sample_size}")
        self.graph = graph
        self.sample_size = sample_size
        self.rng = as_rng(rng)

    def sample(self, side: str, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Sampled (neighbor indices, edge weights); empty if isolated."""
        neighbors, weights = self.graph.neighbors(side, index)
        if len(neighbors) == 0:
            return neighbors, weights
        if len(neighbors) <= self.sample_size:
            return neighbors, weights
        probabilities = weights / weights.sum()
        chosen = self.rng.choice(len(neighbors), size=self.sample_size,
                                 replace=True, p=probabilities)
        return neighbors[chosen], weights[chosen]


class NegativeSampler:
    """Draw contrast nodes with probability ∝ degree^power over U ∪ V.

    Nodes are encoded globally: record ``i`` ↦ ``i`` and MAC ``j`` ↦
    ``num_records + j`` at build time.  The table is rebuilt whenever the
    graph has grown since the last build.
    """

    def __init__(self, graph: WeightedBipartiteGraph, power: float = 0.75, rng=None):
        if power < 0:
            raise ValueError(f"power must be non-negative, got {power}")
        self.graph = graph
        self.power = power
        self.rng = as_rng(rng)
        self._table: AliasTable | None = None
        self._built_for: tuple[int, int] = (-1, -1)

    def _ensure_table(self) -> AliasTable:
        current = (self.graph.num_records, self.graph.num_macs)
        if self._table is None or current != self._built_for:
            record_deg, mac_deg = self.graph.degrees()
            degrees = np.concatenate([record_deg, mac_deg]).astype(np.float64)
            # Isolated nodes get a tiny weight so the table stays valid.
            weights = np.maximum(degrees, 1e-12) ** self.power
            self._table = AliasTable(weights)
            self._built_for = current
        return self._table

    def sample(self, size: int) -> list[tuple[str, int]]:
        """Draw ``size`` nodes as (side, index) references."""
        table = self._ensure_table()
        raw = np.atleast_1d(table.sample(self.rng, size=size))
        num_records = self._built_for[0]
        out = []
        for value in raw:
            if value < num_records:
                out.append((RECORD, int(value)))
            else:
                out.append((MAC, int(value - num_records)))
        return out

    def sample_global(self, size: int) -> np.ndarray:
        """Draw ``size`` nodes as global integer ids (records then MACs)."""
        table = self._ensure_table()
        return np.atleast_1d(table.sample(self.rng, size=size))
