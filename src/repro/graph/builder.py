"""Build the weighted bipartite graph from a batch of signal records."""

from __future__ import annotations

from typing import Iterable

from repro.core.records import SignalRecord
from repro.graph.bipartite import WeightedBipartiteGraph

__all__ = ["build_graph"]


def build_graph(records: Iterable[SignalRecord], weight_offset: float = 120.0) -> WeightedBipartiteGraph:
    """Construct the Sec. III-A graph over ``records``.

    ``weight_offset`` is the constant ``c`` of Eq. 2; the paper uses
    120 dBm, safely above any sensed |RSS|.
    """
    graph = WeightedBipartiteGraph(weight_offset=weight_offset)
    graph.add_records(records)
    return graph
