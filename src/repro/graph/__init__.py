"""Dynamic weighted bipartite graph substrate (Sec. III-A)."""

from repro.graph.bipartite import MAC, RECORD, WeightedBipartiteGraph
from repro.graph.builder import build_graph
from repro.graph.sampling import AliasTable, NegativeSampler, WeightedNeighborSampler
from repro.graph.walks import RandomWalker, WalkConfig, walk_pairs

__all__ = [
    "MAC",
    "RECORD",
    "WeightedBipartiteGraph",
    "build_graph",
    "AliasTable",
    "NegativeSampler",
    "WeightedNeighborSampler",
    "RandomWalker",
    "WalkConfig",
    "walk_pairs",
]
