"""1-D convolutional autoencoder baseline ("Autoencoder + OD", Sec. V).

The paper reports its autoencoder's best results with "four layers of
1-D convolution with the ReLU activation function" over the imputed
record matrix.  We use a four-conv encoder (stride-2 downsampling) whose
flattened output is projected to the embedding dimension, and a dense
decoder trained with mean-squared reconstruction error.  Embeddings
replace BiSAGE's in the detection pipeline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.nn import (Adam, Conv1d, Linear, Module, Tensor, export_parameters,
                      load_parameters, no_grad, ops)
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["AutoencoderConfig", "ConvAutoencoder"]


@dataclass(frozen=True)
class AutoencoderConfig:
    dim: int = 32
    channels: tuple[int, int, int, int] = (8, 16, 16, 8)
    kernel_size: int = 5
    learning_rate: float = 0.003
    epochs: int = 30
    batch_size: int = 32
    seed: int = 0

    def __post_init__(self):
        check_positive_int(self.dim, "dim")
        if len(self.channels) != 4:
            raise ValueError("the paper's autoencoder uses exactly four conv layers")
        check_positive_int(self.kernel_size, "kernel_size")
        check_positive(self.learning_rate, "learning_rate")
        check_positive_int(self.epochs, "epochs")
        check_positive_int(self.batch_size, "batch_size")

    def to_dict(self) -> dict:
        """JSON-safe dict (``channels`` becomes a list); see :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AutoencoderConfig":
        data = dict(data)
        if "channels" in data:
            data["channels"] = tuple(int(c) for c in data["channels"])
        return cls(**data)


class _Encoder(Module):
    def __init__(self, num_features: int, config: AutoencoderConfig, rng):
        pad = config.kernel_size // 2
        c1, c2, c3, c4 = config.channels
        self.conv1 = Conv1d(1, c1, config.kernel_size, stride=2, padding=pad, rng=rng)
        self.conv2 = Conv1d(c1, c2, config.kernel_size, stride=2, padding=pad, rng=rng)
        self.conv3 = Conv1d(c2, c3, config.kernel_size, stride=2, padding=pad, rng=rng)
        self.conv4 = Conv1d(c3, c4, config.kernel_size, stride=2, padding=pad, rng=rng)
        length = num_features
        for conv in (self.conv1, self.conv2, self.conv3, self.conv4):
            length = conv.output_length(length)
            if length <= 0:
                raise ValueError(f"input with {num_features} features is too short for the encoder")
        self.flat_size = c4 * length
        self.project = Linear(self.flat_size, config.dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = ops.relu(self.conv1(x))
        out = ops.relu(self.conv2(out))
        out = ops.relu(self.conv3(out))
        out = ops.relu(self.conv4(out))
        out = out.reshape(out.shape[0], self.flat_size)
        return self.project(out)


class ConvAutoencoder(Module):
    """Encoder–decoder over imputed, [0,1]-scaled record vectors."""

    def __init__(self, num_features: int, config: AutoencoderConfig = AutoencoderConfig()):
        check_positive_int(num_features, "num_features")
        self.config = config
        self.num_features = num_features
        rng = as_rng(config.seed)
        self.encoder = _Encoder(num_features, config, rng)
        self.decoder = Linear(config.dim, num_features, rng=rng)
        self.loss_history: list[float] = []

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """(embedding, reconstruction) for a (batch, features) input."""
        batch = x.shape[0]
        embedding = self.encoder(x.reshape(batch, 1, self.num_features))
        reconstruction = self.decoder(embedding)
        return embedding, reconstruction

    def fit(self, x: np.ndarray) -> "ConvAutoencoder":
        """Train with MSE reconstruction on rows of ``x`` (scaled to [0,1])."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(f"expected (n, {self.num_features}) training matrix, got {x.shape}")
        if len(x) == 0:
            raise ValueError("cannot fit an autoencoder on zero samples")
        cfg = self.config
        optimizer = Adam(self.parameters(), lr=cfg.learning_rate)
        shuffle_rng = as_rng(cfg.seed + 1)
        self.loss_history = []
        for _ in range(cfg.epochs):
            order = shuffle_rng.permutation(len(x))
            for start in range(0, len(x), cfg.batch_size):
                batch = Tensor(x[order[start:start + cfg.batch_size]])
                _, reconstruction = self.forward(batch)
                loss = ops.mse_loss(reconstruction, batch)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                self.loss_history.append(loss.item())
        return self

    def embed(self, x: np.ndarray) -> np.ndarray:
        """Embeddings for rows of ``x`` (no gradient tracking)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        with no_grad():
            embedding, _ = self.forward(Tensor(x))
        return embedding.numpy()

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        """Per-row MSE reconstruction error."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        with no_grad():
            _, reconstruction = self.forward(Tensor(x))
        return ((reconstruction.numpy() - x) ** 2).mean(axis=1)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: config, input width and all weights.

        ``Module.parameters()`` walks attributes in definition order, so
        the flat parameter export is stable across constructions of the
        same architecture.
        """
        return {
            "config": self.config.to_dict(),
            "num_features": self.num_features,
            "loss_history": [float(x) for x in self.loss_history],
            "parameters": export_parameters(self.parameters()),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "ConvAutoencoder":
        """Reconstruct a trained autoencoder saved by :meth:`state_dict`."""
        model = cls(int(state["num_features"]), AutoencoderConfig.from_dict(state["config"]))
        load_parameters(model.parameters(), state["parameters"])
        model.loss_history = [float(x) for x in state.get("loss_history", [])]
        return model
