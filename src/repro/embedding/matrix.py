"""Fixed-length matrix view of signal records (the representation GEM avoids).

The comparison systems (autoencoder, MDS, "GEM without BiSAGE",
SignatureHome/INOA internals) need records as equal-length vectors; the
missing entries are imputed with an arbitrarily small RSS, the paper's
-120 dBm (Sec. III-A, V).  This module centralises that conversion so
every baseline shares identical imputation behaviour.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.records import SignalRecord, unique_macs

__all__ = ["MatrixView", "DEFAULT_FILL_DBM"]

DEFAULT_FILL_DBM = -120.0


class MatrixView:
    """Maps records onto a fixed MAC universe with missing-value imputation.

    Parameters
    ----------
    records:
        Training records; their MAC union defines the column universe.
    fill_value:
        RSS used for MACs absent from a record (paper: -120 dBm).
    macs:
        Optional explicit column universe (overrides the union).
    scale:
        If True, linearly rescale RSS into [0, 1] with ``fill_value``
        mapping to 0 — convenient for neural models.
    """

    def __init__(self, records: Iterable[SignalRecord] | None = None,
                 fill_value: float = DEFAULT_FILL_DBM,
                 macs: Sequence[str] | None = None,
                 scale: bool = False,
                 scale_max: float = -20.0):
        if macs is None:
            if records is None:
                raise ValueError("provide either records or an explicit MAC list")
            macs = sorted(unique_macs(records))
        if not macs:
            raise ValueError("MAC universe is empty; cannot build a matrix view")
        self.macs: list[str] = list(macs)
        self.fill_value = float(fill_value)
        self.scale = scale
        self.scale_max = float(scale_max)
        if scale and self.scale_max <= self.fill_value:
            raise ValueError("scale_max must exceed fill_value")
        self._column: dict[str, int] = {mac: i for i, mac in enumerate(self.macs)}

    @property
    def num_features(self) -> int:
        return len(self.macs)

    def transform_one(self, record: SignalRecord) -> np.ndarray:
        """One record -> fixed-length vector; unknown MACs are dropped."""
        row = np.full(self.num_features, self.fill_value, dtype=np.float64)
        for mac, rss in record.readings.items():
            column = self._column.get(mac)
            if column is not None:
                row[column] = rss
        if self.scale:
            row = (row - self.fill_value) / (self.scale_max - self.fill_value)
            row = np.clip(row, 0.0, 1.0)
        return row

    def transform(self, records: Iterable[SignalRecord]) -> np.ndarray:
        rows = [self.transform_one(record) for record in records]
        if not rows:
            return np.empty((0, self.num_features))
        return np.vstack(rows)

    def coverage(self, record: SignalRecord) -> float:
        """Fraction of the record's readings that land in known columns."""
        if not record.readings:
            return 0.0
        known = sum(1 for mac in record.readings if mac in self._column)
        return known / len(record.readings)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: the column universe and imputation knobs."""
        return {
            "macs": list(self.macs),
            "fill_value": self.fill_value,
            "scale": self.scale,
            "scale_max": self.scale_max,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "MatrixView":
        """Reconstruct a view saved by :meth:`state_dict`."""
        return cls(macs=[str(mac) for mac in state["macs"]],
                   fill_value=float(state["fill_value"]),
                   scale=bool(state["scale"]),
                   scale_max=float(state["scale_max"]))
