"""BiSAGE: bipartite sample-and-aggregate network embedding (Sec. III-B).

The algorithmic content of the paper's core contribution:

* every node keeps a **primary** embedding ``h`` and an **auxiliary**
  embedding ``l``; one aggregation round updates ``h_i`` from sampled
  neighbours' ``l_{j}`` and ``l_i`` from neighbours' ``h_j`` (Eq. 3–6,
  Algorithm 1), then L2-normalises both (Eq. 7);
* neighbour sampling and in-aggregation weighting are proportional to
  edge weight (Eq. 8);
* training minimises the skip-gram-style loss of Eq. 9 over consecutive
  nodes of weighted random walks, with ``K_N`` negative nodes drawn
  ``∝ degree^{3/4}``;
* the model is **inductive**: a record streamed in later is attached to
  the graph and embedded with the frozen weight matrices by aggregating
  its neighbours' cached per-layer embeddings (Sec. IV-A).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.embedding.common import (
    admitted_mask,
    threshold_admissions,
    global_csr,
    initial_embedding_row,
    sampled_aggregation_matrix,
)
from repro.graph.bipartite import MAC, RECORD, WeightedBipartiteGraph
from repro.graph.sampling import NegativeSampler
from repro.graph.walks import RandomWalker, WalkConfig, walk_pairs
from repro.nn import (Adam, Parameter, Tensor, export_parameters, init,
                      load_parameters, no_grad, ops, spmm)
from repro.nn.batch import SageInferenceKernel
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["BiSAGEConfig", "BiSAGE"]

# Node identity used for the initial embedding of *inference-time* record
# nodes.  Training nodes keep per-node random initial embeddings (as the
# paper specifies); streamed records all share this one so that their
# embedding — and therefore the in/out decision — is deterministic in the
# record's readings.
_INFERENCE_KEY = -1

_ACTIVATIONS = {
    "tanh": (ops.tanh, np.tanh),
    "relu": (ops.relu, lambda x: np.maximum(x, 0.0)),
    "sigmoid": (ops.sigmoid, lambda x: 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))),
}


@dataclass(frozen=True)
class BiSAGEConfig:
    """Hyper-parameters for BiSAGE (paper defaults from Sec. V).

    ``sample_size=None`` aggregates over full neighbourhoods with Eq. 8
    weights (the sampled aggregator's expectation) — deterministic and
    faster for small graphs.
    """

    dim: int = 32
    num_layers: int = 2
    sample_size: int | None = 10
    activation: str = "tanh"
    learning_rate: float = 0.003
    epochs: int = 5
    batch_pairs: int = 256
    negative_samples: int = 4
    negative_power: float = 0.75
    resample_every: int = 1
    walk: WalkConfig = field(default_factory=WalkConfig)
    seed: int = 0

    def __post_init__(self):
        check_positive_int(self.dim, "dim")
        check_positive_int(self.num_layers, "num_layers")
        if self.sample_size is not None:
            check_positive_int(self.sample_size, "sample_size")
        if self.activation not in _ACTIVATIONS:
            raise ValueError(f"activation must be one of {sorted(_ACTIVATIONS)}, got {self.activation!r}")
        check_positive(self.learning_rate, "learning_rate")
        check_positive_int(self.epochs, "epochs")
        check_positive_int(self.batch_pairs, "batch_pairs")
        check_positive_int(self.negative_samples, "negative_samples")
        if self.negative_power < 0:
            raise ValueError("negative_power must be non-negative")
        check_positive_int(self.resample_every, "resample_every")

    def with_dim(self, dim: int) -> "BiSAGEConfig":
        return replace(self, dim=dim)

    def to_dict(self) -> dict:
        """JSON-safe dict (nested WalkConfig included); see :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BiSAGEConfig":
        data = dict(data)
        walk = data.pop("walk", None)
        if walk is not None:
            data["walk"] = WalkConfig.from_dict(walk)
        return cls(**data)


class BiSAGE:
    """Trainable BiSAGE embedder bound to a (dynamic) bipartite graph."""

    def __init__(self, config: BiSAGEConfig = BiSAGEConfig()):
        self.config = config
        self.graph: WeightedBipartiteGraph | None = None
        self.weights_h: list[Parameter] = []
        self.weights_l: list[Parameter] = []
        self.loss_history: list[float] = []
        # Per-layer caches, split per partition so indices stay stable as
        # the graph grows: lists of (n, d) arrays, index 0 = layer 0.
        self._cache_hu: list[np.ndarray] = []
        self._cache_lu: list[np.ndarray] = []
        self._cache_hv: list[np.ndarray] = []
        self._cache_lv: list[np.ndarray] = []
        self._macs_aggregated = 0
        # Optional support-threshold admissions: a boolean mask over MAC
        # indices extending the aggregation universe beyond the trained
        # boundary (see refresh_cache(admit_new_macs_after=...)); None
        # means the boundary alone decides.
        self._mac_admitted: np.ndarray | None = None
        self._rng = as_rng(config.seed)

    # ------------------------------------------------------------------
    # Initial embeddings (deterministic per node identity)
    # ------------------------------------------------------------------
    def _node_key(self, side: str, index: int) -> int:
        return 2 * index if side == RECORD else 2 * index + 1

    def _initial_row(self, side: str, index: int, which: str) -> np.ndarray:
        salt = 0 if which == "h" else 1
        return initial_embedding_row(self.config.dim, self.config.seed, salt,
                                     self._node_key(side, index))

    def _initial_matrix(self, side: str, count: int, which: str, start: int = 0) -> np.ndarray:
        out = np.empty((count, self.config.dim), dtype=np.float64)
        for i in range(count):
            out[i] = self._initial_row(side, start + i, which)
        return out

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, graph: WeightedBipartiteGraph) -> "BiSAGE":
        """Train weight matrices on ``graph`` and build inference caches."""
        if graph.num_records == 0:
            raise ValueError("cannot fit BiSAGE on a graph with no record nodes")
        cfg = self.config
        self.graph = graph
        num_u, num_v = graph.num_records, graph.num_macs
        num_nodes = num_u + num_v

        h0 = np.vstack([self._initial_matrix(RECORD, num_u, "h"),
                        self._initial_matrix(MAC, num_v, "h")]) if num_v else self._initial_matrix(RECORD, num_u, "h")
        l0 = np.vstack([self._initial_matrix(RECORD, num_u, "l"),
                        self._initial_matrix(MAC, num_v, "l")]) if num_v else self._initial_matrix(RECORD, num_u, "l")

        param_rng = as_rng(cfg.seed + 1)
        self.weights_h = [Parameter(init.xavier_uniform((2 * cfg.dim, cfg.dim), param_rng))
                          for _ in range(cfg.num_layers)]
        self.weights_l = [Parameter(init.xavier_uniform((2 * cfg.dim, cfg.dim), param_rng))
                          for _ in range(cfg.num_layers)]

        indptr, indices, edge_weights = global_csr(graph)
        walker = RandomWalker(graph, cfg.walk, rng=as_rng(cfg.seed + 2))
        pairs = walk_pairs(walker.corpus(), window=cfg.walk.window)
        if not pairs:
            # Degenerate graph (all nodes isolated): keep random weights.
            self._build_cache()
            return self
        pair_ids = np.asarray(
            [[self._global_id(x, num_u), self._global_id(y, num_u)] for x, y in pairs],
            dtype=np.int64,
        )
        negative_sampler = NegativeSampler(graph, power=cfg.negative_power,
                                           rng=as_rng(cfg.seed + 3))

        optimizer = Adam(self.weights_h + self.weights_l, lr=cfg.learning_rate)
        activation = _ACTIVATIONS[cfg.activation][0]
        sample_rng = as_rng(cfg.seed + 4)
        shuffle_rng = as_rng(cfg.seed + 5)
        self.loss_history = []

        aggregators = None
        step = 0
        for _ in range(cfg.epochs):
            order = shuffle_rng.permutation(len(pair_ids))
            for start in range(0, len(order), cfg.batch_pairs):
                batch = pair_ids[order[start:start + cfg.batch_pairs]]
                if aggregators is None or step % cfg.resample_every == 0:
                    aggregators = [
                        sampled_aggregation_matrix(indptr, indices, edge_weights,
                                                   num_nodes, cfg.sample_size, sample_rng)
                        for _ in range(cfg.num_layers)
                    ]
                h_final, l_final = self._forward(h0, l0, aggregators, activation)
                loss = self._loss(h_final, l_final, batch, negative_sampler, num_u)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                self.loss_history.append(loss.item())
                step += 1

        self._build_cache()
        return self

    @staticmethod
    def _global_id(node: tuple[str, int], num_records: int) -> int:
        side, index = node
        return index if side == RECORD else num_records + index

    def _forward(self, h0: np.ndarray, l0: np.ndarray, aggregators, activation):
        """K rounds of Algorithm 1 over the whole (snapshot) graph."""
        h = Tensor(h0)
        l = Tensor(l0)
        for k, matrix in enumerate(aggregators):
            h_agg = spmm(matrix, l)            # Eq. 3 (aggregate auxiliaries)
            l_agg = spmm(matrix, h)            # Eq. 5 (aggregate primaries)
            h_new = activation(ops.concat([h, h_agg], axis=1) @ self.weights_h[k])  # Eq. 4
            l_new = activation(ops.concat([l, l_agg], axis=1) @ self.weights_l[k])  # Eq. 6
            h = ops.l2_normalize_rows(h_new)   # Eq. 7
            l = ops.l2_normalize_rows(l_new)
        return h, l

    def _loss(self, h: Tensor, l: Tensor, batch: np.ndarray,
              negative_sampler: NegativeSampler, num_records: int) -> Tensor:
        """Eq. 9 over a batch of walk pairs plus K_N negatives per pair."""
        cfg = self.config
        x_ids, y_ids = batch[:, 0], batch[:, 1]
        h_x = ops.gather_rows(h, x_ids)
        l_x = ops.gather_rows(l, x_ids)
        h_y = ops.gather_rows(h, y_ids)
        l_y = ops.gather_rows(l, y_ids)
        positive = ops.log_sigmoid(ops.row_dot(h_x, l_y)) + ops.log_sigmoid(ops.row_dot(l_x, h_y))

        z_ids = negative_sampler.sample_global(len(batch) * cfg.negative_samples)
        h_z = ops.gather_rows(h, z_ids).reshape(len(batch), cfg.negative_samples, cfg.dim)
        l_z = ops.gather_rows(l, z_ids).reshape(len(batch), cfg.negative_samples, cfg.dim)
        h_x3 = h_x.reshape(len(batch), 1, cfg.dim)
        l_x3 = l_x.reshape(len(batch), 1, cfg.dim)
        negative = (ops.log_sigmoid(-(h_x3 * l_z).sum(axis=2))
                    + ops.log_sigmoid(-(l_x3 * h_z).sum(axis=2))).sum(axis=1)
        return -(positive + negative).mean()

    # ------------------------------------------------------------------
    # Inference caches
    # ------------------------------------------------------------------
    def _build_cache(self) -> None:
        """Recompute per-layer embeddings for every current node.

        Deterministic: uses full-neighbourhood aggregation (the sampled
        aggregator's expectation) so repeated calls agree.
        """
        graph = self._require_fitted()
        cfg = self.config
        num_u, num_v = graph.num_records, graph.num_macs
        num_nodes = num_u + num_v
        act = _ACTIVATIONS[cfg.activation][1]

        h = np.vstack([self._initial_matrix(RECORD, num_u, "h"),
                       self._initial_matrix(MAC, num_v, "h")]) if num_v else self._initial_matrix(RECORD, num_u, "h")
        l = np.vstack([self._initial_matrix(RECORD, num_u, "l"),
                       self._initial_matrix(MAC, num_v, "l")]) if num_v else self._initial_matrix(RECORD, num_u, "l")

        indptr, indices, edge_weights = global_csr(graph)
        matrix = sampled_aggregation_matrix(indptr, indices, edge_weights, num_nodes, None, self._rng)

        layers_h, layers_l = [h], [l]
        for k in range(cfg.num_layers):
            h_agg = matrix @ layers_l[-1]
            l_agg = matrix @ layers_h[-1]
            h_new = act(np.hstack([layers_h[-1], h_agg]) @ self.weights_h[k].data)
            l_new = act(np.hstack([layers_l[-1], l_agg]) @ self.weights_l[k].data)
            layers_h.append(_l2_rows(h_new))
            layers_l.append(_l2_rows(l_new))

        self._cache_hu = [layer[:num_u].copy() for layer in layers_h]
        self._cache_lu = [layer[:num_u].copy() for layer in layers_l]
        self._cache_hv = [layer[num_u:].copy() for layer in layers_h]
        self._cache_lv = [layer[num_u:].copy() for layer in layers_l]
        # MAC nodes at index >= this have never been through an
        # aggregation pass; inference must not aggregate from them.
        self._macs_aggregated = num_v

    def refresh_cache(self, admit_new_macs: bool = True,
                      admit_new_macs_after: int | None = None) -> None:
        """Recompute caches against the graph's *current* contents.

        ``admit_new_macs=True`` (the raw, legacy behaviour) also admits
        MACs first seen after training into inference-time aggregation.
        Measured under churn, that *collapses* in/out separation: the
        trained weight matrices never saw those nodes, and one refresh
        after a churn shock drives both classes' scores to the ceiling.
        The coordinated refresh path passes ``False`` — per-layer
        embeddings are recomputed over the grown graph, but the
        aggregation universe stays the trained one; new MACs join at
        full re-provision, when the weights are retrained too.

        ``admit_new_macs_after=N`` (with ``admit_new_macs=False``) is
        the support-threshold middle ground: a post-training MAC joins
        the aggregation universe once at least N attached observations
        sense it.  Its per-layer cache rows come from this rebuild's
        full aggregation pass, so admitted MACs carry aggregated — not
        random-initial — embeddings.  Admission is monotone across
        refreshes (degrees only grow).
        """
        if admit_new_macs_after is not None and admit_new_macs_after < 1:
            # Validate before the (expensive) rebuild mutates the caches.
            raise ValueError(f"admit_new_macs_after must be >= 1 or None, "
                             f"got {admit_new_macs_after}")
        boundary = self._macs_aggregated
        graph = self._require_fitted()
        self._build_cache()
        if admit_new_macs:
            self._mac_admitted = None
            return
        self._macs_aggregated = min(boundary, graph.num_macs)
        # A strict (threshold-less) trained-universe refresh also forgets
        # any earlier threshold admissions: the universe is the trained one.
        self._mac_admitted = threshold_admissions(graph, self._macs_aggregated,
                                                  admit_new_macs_after)

    def _extend_mac_cache(self) -> None:
        """Lazily append rows for MAC nodes added after the last cache build.

        New MACs enter at their (deterministic random) initial embedding
        at every layer; a later :meth:`refresh_cache` gives them fully
        aggregated embeddings.
        """
        graph = self._require_fitted()
        have = self._cache_hv[0].shape[0] if self._cache_hv else 0
        need = graph.num_macs
        if need <= have:
            return
        extra_h = self._initial_matrix(MAC, need - have, "h", start=have)
        extra_l = self._initial_matrix(MAC, need - have, "l", start=have)
        self._cache_hv = [np.vstack([layer, extra_h]) for layer in self._cache_hv]
        self._cache_lv = [np.vstack([layer, extra_l]) for layer in self._cache_lv]

    def _require_fitted(self) -> WeightedBipartiteGraph:
        if self.graph is None:
            raise RuntimeError("BiSAGE has not been fitted; call fit(graph) first")
        return self.graph

    # ------------------------------------------------------------------
    # Public embedding queries
    # ------------------------------------------------------------------
    def record_embeddings(self) -> np.ndarray:
        """Final primary embeddings of all cached record nodes (n_U, d)."""
        self._require_fitted()
        return self._cache_hu[-1]

    def mac_embeddings(self) -> np.ndarray:
        """Final primary embeddings of all cached MAC nodes (n_V, d)."""
        self._require_fitted()
        return self._cache_hv[-1]

    def embed_record_node(self, index: int) -> np.ndarray:
        """Inductive embedding of record node ``index`` (Sec. IV-A).

        Runs K aggregation rounds for this single node against the cached
        per-layer MAC embeddings, leaving neighbours untouched.  All
        inference-time nodes share one fixed initial embedding (see
        ``_INFERENCE_KEY``) so the prediction is a deterministic function
        of the record's readings; per-node random initialisation would
        inject irreducible score noise into every streamed decision.
        """
        graph = self._require_fitted()
        neighbors, weights = graph.neighbors(RECORD, index)
        return self._embed_from_neighbors(RECORD, _INFERENCE_KEY, neighbors, weights)

    def embed_readings(self, readings: dict[str, float]) -> np.ndarray | None:
        """Embed a record *without* mutating the graph.

        Only MACs already present in the graph contribute; returns None
        when no sensed MAC is known (footnote 3: such records are treated
        as outliers by the caller).
        """
        graph = self._require_fitted()
        known = [(graph.mac_index(mac), rss) for mac, rss in readings.items()
                 if graph.mac_index(mac) is not None]
        if not known:
            return None
        neighbors = np.asarray([idx for idx, _ in known], dtype=np.int64)
        weights = np.asarray([graph.edge_weight_of_rss(rss) for _, rss in known])
        return self._embed_from_neighbors(RECORD, _INFERENCE_KEY, neighbors, weights)

    def _embed_from_neighbors(self, side: str, index: int,
                              neighbors: np.ndarray, weights: np.ndarray) -> np.ndarray:
        cfg = self.config
        act = _ACTIVATIONS[cfg.activation][1]
        self._extend_mac_cache()
        neighbor_h = self._cache_hv if side == RECORD else self._cache_hu
        neighbor_l = self._cache_lv if side == RECORD else self._cache_lu

        h = self._initial_row(side, index, "h")
        l = self._initial_row(side, index, "l")
        if side == RECORD and len(neighbors):
            # MACs added to the graph after the last cache build carry only
            # their random initial embedding — aggregating from them would
            # inject pure noise (one strong unknown MAC could dominate the
            # weighted mean).  They join the aggregation after the next
            # refresh_cache() gives them real embeddings.
            usable = neighbors < self._macs_aggregated
            if self._mac_admitted is not None:
                known = neighbors < len(self._mac_admitted)
                extra = np.zeros(len(neighbors), dtype=bool)
                extra[known] = self._mac_admitted[neighbors[known]]
                usable |= extra
            neighbors, weights = neighbors[usable], weights[usable]
        if len(neighbors) == 0:
            return h
        probabilities = weights / weights.sum()
        for k in range(cfg.num_layers):
            h_agg = probabilities @ neighbor_l[k][neighbors]   # Eq. 3 + Eq. 8
            l_agg = probabilities @ neighbor_h[k][neighbors]   # Eq. 5 + Eq. 8
            h = _l2_rows(act(np.concatenate([h, h_agg]) @ self.weights_h[k].data))
            l = _l2_rows(act(np.concatenate([l, l_agg]) @ self.weights_l[k].data))
        return h

    # ------------------------------------------------------------------
    # Batched inference (vectorized data plane)
    # ------------------------------------------------------------------
    def batched_inference(self) -> SageInferenceKernel:
        """Hoisted record-inference kernel for the batch data plane.

        Captures exactly what :meth:`embed_record_node` reads for a
        RECORD-side node: the shared ``_INFERENCE_KEY`` initial row, the
        primary weight stack, and the auxiliary MAC caches it aggregates
        from (Eq. 3 + Eq. 8).  The auxiliary ``l`` stream is omitted —
        the scalar loop updates it each layer but the returned primary
        embedding never reads it back, so skipping it changes nothing.
        Valid until :meth:`inference_token` changes.
        """
        self._require_fitted()
        return SageInferenceKernel(
            initial=self._initial_row(RECORD, _INFERENCE_KEY, "h"),
            weights=[w.data for w in self.weights_h],
            neighbor_caches=self._cache_lv,
            act=_ACTIVATIONS[self.config.activation][1],
            macs_aggregated=self._macs_aggregated,
            mac_admitted=self._mac_admitted,
        )

    def inference_token(self) -> tuple:
        """Identity fingerprint of everything a kernel captures.

        Any event that could change inference output — refresh-commit
        swapping the embedder, ``load_state_dict`` rebuilding weights
        and caches, ``refresh_cache`` rebinding the cache lists, even a
        mid-batch ``_extend_mac_cache`` rebind — produces new objects
        here, so an ``id``-based tuple comparison catches them all
        without hashing array contents.
        """
        return (
            id(self.graph),
            tuple(id(w) for w in self.weights_h),
            id(self._cache_lv),
            self._macs_aggregated,
            id(self._mac_admitted),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All trainable parameters (primary then auxiliary weights)."""
        return self.weights_h + self.weights_l

    def state_dict(self) -> dict:
        """Checkpointable state: config, weights and inference caches.

        The per-layer caches are saved verbatim (rather than rebuilt on
        load) so a restored model reproduces inductive embeddings —
        and therefore geofence decisions — bit-for-bit, even when MACs
        were appended to the graph after the last :meth:`refresh_cache`.
        The bound graph is *not* included; the owner saves it separately
        and passes it back to :meth:`load_state_dict`.
        """
        self._require_fitted()
        state: dict = {
            "config": self.config.to_dict(),
            "macs_aggregated": self._macs_aggregated,
            "loss_history": [float(x) for x in self.loss_history],
            "parameters": export_parameters(self.parameters()),
        }
        if self._mac_admitted is not None:
            # Threshold-admitted MAC indices (compact; omitted entirely
            # when no admission is active so pre-admission checkpoints
            # keep their exact key set).
            state["macs_admitted"] = np.flatnonzero(
                self._mac_admitted[self._macs_aggregated:]) + self._macs_aggregated
        for name in ("hu", "lu", "hv", "lv"):
            layers = getattr(self, f"_cache_{name}")
            state[f"cache_{name}"] = {str(k): layer.copy() for k, layer in enumerate(layers)}
        return state

    def load_state_dict(self, state: dict, graph: WeightedBipartiteGraph) -> "BiSAGE":
        """Restore a model saved by :meth:`state_dict` onto ``graph``.

        ``graph`` must be the graph the state was saved against (or a
        reconstruction of it); cache shapes are validated against it.
        """
        cfg = self.config
        saved_cfg = BiSAGEConfig.from_dict(state["config"])
        if saved_cfg != cfg:
            raise ValueError("checkpoint config does not match this model's config; "
                             f"saved {saved_cfg}, constructed with {cfg}")
        self.weights_h = [Parameter(np.zeros((2 * cfg.dim, cfg.dim))) for _ in range(cfg.num_layers)]
        self.weights_l = [Parameter(np.zeros((2 * cfg.dim, cfg.dim))) for _ in range(cfg.num_layers)]
        load_parameters(self.parameters(), state["parameters"])
        for name in ("hu", "lu", "hv", "lv"):
            saved = state[f"cache_{name}"]
            layers = [np.asarray(saved[str(k)], dtype=np.float64) for k in range(len(saved))]
            if len(layers) != cfg.num_layers + 1:
                raise ValueError(f"cache_{name} has {len(layers)} layers, expected {cfg.num_layers + 1}")
            for layer in layers:
                if layer.shape[1] != cfg.dim:
                    raise ValueError(f"cache_{name} dimension {layer.shape[1]} != config dim {cfg.dim}")
            setattr(self, f"_cache_{name}", layers)
        num_u = self._cache_hu[0].shape[0]
        if num_u > graph.num_records:
            raise ValueError(f"cached {num_u} record nodes but graph has only {graph.num_records}")
        self._macs_aggregated = int(state["macs_aggregated"])
        if self._macs_aggregated > graph.num_macs:
            raise ValueError(f"macs_aggregated={self._macs_aggregated} exceeds graph's {graph.num_macs} MACs")
        self._mac_admitted = admitted_mask(state.get("macs_admitted"),
                                           self._macs_aggregated, graph.num_macs)
        self.loss_history = [float(x) for x in state.get("loss_history", [])]
        self.graph = graph
        return self


def _l2_rows(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    if x.ndim == 1:
        return x / np.sqrt((x * x).sum() + eps)
    norms = np.sqrt((x * x).sum(axis=1, keepdims=True) + eps)
    return x / norms
