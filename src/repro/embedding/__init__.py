"""Record embedders: BiSAGE (the paper's) and comparison embedders."""

from repro.embedding.autoencoder import AutoencoderConfig, ConvAutoencoder
from repro.embedding.bisage import BiSAGE, BiSAGEConfig
from repro.embedding.graphsage import GraphSAGE, GraphSAGEConfig
from repro.embedding.matrix import DEFAULT_FILL_DBM, MatrixView
from repro.embedding.mds import ClassicalMDS

__all__ = [
    "AutoencoderConfig",
    "BiSAGE",
    "BiSAGEConfig",
    "ClassicalMDS",
    "ConvAutoencoder",
    "DEFAULT_FILL_DBM",
    "GraphSAGE",
    "GraphSAGEConfig",
    "MatrixView",
]
