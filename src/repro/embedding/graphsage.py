"""Homogeneous GraphSAGE baseline (Hamilton et al., 2017).

Used exactly as in the paper's "GraphSAGE + OD" comparison: the weighted
bipartite graph is treated as a *homogeneous* graph — one embedding per
node, one weight matrix per layer, no primary/auxiliary split — so the
aggregation mixes record and MAC embeddings indiscriminately.  Walks,
weighted neighbour sampling and negative sampling reuse the same
substrate as BiSAGE to isolate the bi-level-aggregation ablation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.embedding.common import (
    admitted_mask,
    threshold_admissions,
    global_csr,
    initial_embedding_row,
    sampled_aggregation_matrix,
)
from repro.graph.bipartite import MAC, RECORD, WeightedBipartiteGraph
from repro.graph.sampling import NegativeSampler
from repro.graph.walks import RandomWalker, WalkConfig, walk_pairs
from repro.nn import (Adam, Parameter, Tensor, export_parameters, init,
                      load_parameters, ops, spmm)
from repro.nn.batch import SageInferenceKernel
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["GraphSAGEConfig", "GraphSAGE"]

# Shared initial-embedding identity for inference-time nodes (see
# repro.embedding.bisage._INFERENCE_KEY for the rationale).
_INFERENCE_KEY = -1

_ACTIVATIONS = {
    "tanh": (ops.tanh, np.tanh),
    "relu": (ops.relu, lambda x: np.maximum(x, 0.0)),
}


@dataclass(frozen=True)
class GraphSAGEConfig:
    """Hyper-parameters mirroring :class:`~repro.embedding.bisage.BiSAGEConfig`."""

    dim: int = 32
    num_layers: int = 2
    sample_size: int | None = 10
    activation: str = "tanh"
    learning_rate: float = 0.003
    epochs: int = 5
    batch_pairs: int = 256
    negative_samples: int = 4
    negative_power: float = 0.75
    resample_every: int = 1
    walk: WalkConfig = field(default_factory=WalkConfig)
    seed: int = 0

    def __post_init__(self):
        check_positive_int(self.dim, "dim")
        check_positive_int(self.num_layers, "num_layers")
        if self.sample_size is not None:
            check_positive_int(self.sample_size, "sample_size")
        if self.activation not in _ACTIVATIONS:
            raise ValueError(f"activation must be one of {sorted(_ACTIVATIONS)}, got {self.activation!r}")
        check_positive(self.learning_rate, "learning_rate")
        check_positive_int(self.epochs, "epochs")
        check_positive_int(self.batch_pairs, "batch_pairs")
        check_positive_int(self.negative_samples, "negative_samples")

    def to_dict(self) -> dict:
        """JSON-safe dict (nested WalkConfig included); see :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GraphSAGEConfig":
        data = dict(data)
        walk = data.pop("walk", None)
        if walk is not None:
            data["walk"] = WalkConfig.from_dict(walk)
        return cls(**data)


class GraphSAGE:
    """Single-embedding SAGE on the bipartite graph treated as homogeneous."""

    def __init__(self, config: GraphSAGEConfig = GraphSAGEConfig()):
        self.config = config
        self.graph: WeightedBipartiteGraph | None = None
        self.weights: list[Parameter] = []
        self.loss_history: list[float] = []
        self._cache_u: list[np.ndarray] = []
        self._cache_v: list[np.ndarray] = []
        self._macs_aggregated = 0
        # Support-threshold admissions past the trained boundary; see
        # BiSAGE._mac_admitted for the semantics.
        self._mac_admitted: np.ndarray | None = None
        self._rng = as_rng(config.seed)

    def _node_key(self, side: str, index: int) -> int:
        return 2 * index if side == RECORD else 2 * index + 1

    def _initial_row(self, side: str, index: int) -> np.ndarray:
        return initial_embedding_row(self.config.dim, self.config.seed, 7,
                                     self._node_key(side, index))

    def _initial_matrix(self, side: str, count: int, start: int = 0) -> np.ndarray:
        out = np.empty((count, self.config.dim), dtype=np.float64)
        for i in range(count):
            out[i] = self._initial_row(side, start + i)
        return out

    def fit(self, graph: WeightedBipartiteGraph) -> "GraphSAGE":
        if graph.num_records == 0:
            raise ValueError("cannot fit GraphSAGE on a graph with no record nodes")
        cfg = self.config
        self.graph = graph
        num_u, num_v = graph.num_records, graph.num_macs
        num_nodes = num_u + num_v

        z0 = np.vstack([self._initial_matrix(RECORD, num_u),
                        self._initial_matrix(MAC, num_v)]) if num_v else self._initial_matrix(RECORD, num_u)

        param_rng = as_rng(cfg.seed + 1)
        self.weights = [Parameter(init.xavier_uniform((2 * cfg.dim, cfg.dim), param_rng))
                        for _ in range(cfg.num_layers)]

        indptr, indices, edge_weights = global_csr(graph)
        walker = RandomWalker(graph, cfg.walk, rng=as_rng(cfg.seed + 2))
        pairs = walk_pairs(walker.corpus(), window=cfg.walk.window)
        if not pairs:
            self._build_cache()
            return self
        pair_ids = np.asarray(
            [[i if s == RECORD else num_u + i for s, i in (x, y)] for x, y in pairs],
            dtype=np.int64,
        )
        negative_sampler = NegativeSampler(graph, power=cfg.negative_power,
                                           rng=as_rng(cfg.seed + 3))
        optimizer = Adam(self.weights, lr=cfg.learning_rate)
        activation = _ACTIVATIONS[cfg.activation][0]
        sample_rng = as_rng(cfg.seed + 4)
        shuffle_rng = as_rng(cfg.seed + 5)
        self.loss_history = []

        aggregators = None
        step = 0
        for _ in range(cfg.epochs):
            order = shuffle_rng.permutation(len(pair_ids))
            for start in range(0, len(order), cfg.batch_pairs):
                batch = pair_ids[order[start:start + cfg.batch_pairs]]
                if aggregators is None or step % cfg.resample_every == 0:
                    aggregators = [
                        sampled_aggregation_matrix(indptr, indices, edge_weights,
                                                   num_nodes, cfg.sample_size, sample_rng)
                        for _ in range(cfg.num_layers)
                    ]
                z = self._forward(z0, aggregators, activation)
                loss = self._loss(z, batch, negative_sampler)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                self.loss_history.append(loss.item())
                step += 1

        self._build_cache()
        return self

    def _forward(self, z0: np.ndarray, aggregators, activation) -> Tensor:
        z = Tensor(z0)
        for k, matrix in enumerate(aggregators):
            agg = spmm(matrix, z)
            z = ops.l2_normalize_rows(activation(ops.concat([z, agg], axis=1) @ self.weights[k]))
        return z

    def _loss(self, z: Tensor, batch: np.ndarray, negative_sampler: NegativeSampler) -> Tensor:
        cfg = self.config
        z_x = ops.gather_rows(z, batch[:, 0])
        z_y = ops.gather_rows(z, batch[:, 1])
        positive = ops.log_sigmoid(ops.row_dot(z_x, z_y))
        neg_ids = negative_sampler.sample_global(len(batch) * cfg.negative_samples)
        z_neg = ops.gather_rows(z, neg_ids).reshape(len(batch), cfg.negative_samples, cfg.dim)
        z_x3 = z_x.reshape(len(batch), 1, cfg.dim)
        negative = ops.log_sigmoid(-(z_x3 * z_neg).sum(axis=2)).sum(axis=1)
        return -(positive + negative).mean()

    # ------------------------------------------------------------------
    # Caches and inference
    # ------------------------------------------------------------------
    def _build_cache(self) -> None:
        graph = self._require_fitted()
        cfg = self.config
        num_u, num_v = graph.num_records, graph.num_macs
        act = _ACTIVATIONS[cfg.activation][1]
        z = np.vstack([self._initial_matrix(RECORD, num_u),
                       self._initial_matrix(MAC, num_v)]) if num_v else self._initial_matrix(RECORD, num_u)
        indptr, indices, edge_weights = global_csr(graph)
        matrix = sampled_aggregation_matrix(indptr, indices, edge_weights,
                                            num_u + num_v, None, self._rng)
        layers = [z]
        for k in range(cfg.num_layers):
            agg = matrix @ layers[-1]
            layers.append(_l2_rows(act(np.hstack([layers[-1], agg]) @ self.weights[k].data)))
        self._cache_u = [layer[:num_u].copy() for layer in layers]
        self._cache_v = [layer[num_u:].copy() for layer in layers]
        self._macs_aggregated = num_v

    def refresh_cache(self, admit_new_macs: bool = True,
                      admit_new_macs_after: int | None = None) -> None:
        """Recompute caches; see :meth:`repro.embedding.bisage.BiSAGE.refresh_cache`
        for the ``admit_new_macs`` / ``admit_new_macs_after`` semantics
        (the coordinated refresh path passes ``admit_new_macs=False`` to
        keep the trained aggregation universe, optionally admitting
        post-training MACs once N attached observations support them)."""
        if admit_new_macs_after is not None and admit_new_macs_after < 1:
            # Validate before the (expensive) rebuild mutates the caches.
            raise ValueError(f"admit_new_macs_after must be >= 1 or None, "
                             f"got {admit_new_macs_after}")
        boundary = self._macs_aggregated
        graph = self._require_fitted()
        self._build_cache()
        if admit_new_macs:
            self._mac_admitted = None
            return
        self._macs_aggregated = min(boundary, graph.num_macs)
        self._mac_admitted = threshold_admissions(graph, self._macs_aggregated,
                                                  admit_new_macs_after)

    def _extend_mac_cache(self) -> None:
        graph = self._require_fitted()
        have = self._cache_v[0].shape[0] if self._cache_v else 0
        need = graph.num_macs
        if need <= have:
            return
        extra = self._initial_matrix(MAC, need - have, start=have)
        self._cache_v = [np.vstack([layer, extra]) for layer in self._cache_v]

    def _require_fitted(self) -> WeightedBipartiteGraph:
        if self.graph is None:
            raise RuntimeError("GraphSAGE has not been fitted; call fit(graph) first")
        return self.graph

    def record_embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._cache_u[-1]

    def embed_record_node(self, index: int) -> np.ndarray:
        # Inference nodes share one fixed initial embedding (see BiSAGE's
        # _INFERENCE_KEY rationale): deterministic predictions, no
        # per-record initialisation noise.
        graph = self._require_fitted()
        neighbors, weights = graph.neighbors(RECORD, index)
        return self._embed_from_neighbors(_INFERENCE_KEY, neighbors, weights)

    def embed_readings(self, readings: dict[str, float]) -> np.ndarray | None:
        graph = self._require_fitted()
        known = [(graph.mac_index(mac), rss) for mac, rss in readings.items()
                 if graph.mac_index(mac) is not None]
        if not known:
            return None
        neighbors = np.asarray([idx for idx, _ in known], dtype=np.int64)
        weights = np.asarray([graph.edge_weight_of_rss(rss) for _, rss in known])
        return self._embed_from_neighbors(_INFERENCE_KEY, neighbors, weights)

    def _embed_from_neighbors(self, index: int, neighbors: np.ndarray,
                              weights: np.ndarray) -> np.ndarray:
        cfg = self.config
        act = _ACTIVATIONS[cfg.activation][1]
        self._extend_mac_cache()
        z = self._initial_row(RECORD, index)
        if len(neighbors):
            # Exclude MACs never aggregated (see BiSAGE: their cache rows
            # are random initials and would pollute the weighted mean).
            usable = neighbors < self._macs_aggregated
            if self._mac_admitted is not None:
                known = neighbors < len(self._mac_admitted)
                extra = np.zeros(len(neighbors), dtype=bool)
                extra[known] = self._mac_admitted[neighbors[known]]
                usable |= extra
            neighbors, weights = neighbors[usable], weights[usable]
        if len(neighbors) == 0:
            return z
        probabilities = weights / weights.sum()
        for k in range(cfg.num_layers):
            agg = probabilities @ self._cache_v[k][neighbors]
            z = _l2_rows(act(np.concatenate([z, agg]) @ self.weights[k].data))
        return z

    # ------------------------------------------------------------------
    # Batched inference (vectorized data plane)
    # ------------------------------------------------------------------
    def batched_inference(self) -> SageInferenceKernel:
        """Hoisted record-inference kernel (see BiSAGE.batched_inference)."""
        self._require_fitted()
        return SageInferenceKernel(
            initial=self._initial_row(RECORD, _INFERENCE_KEY),
            weights=[w.data for w in self.weights],
            neighbor_caches=self._cache_v,
            act=_ACTIVATIONS[self.config.activation][1],
            macs_aggregated=self._macs_aggregated,
            mac_admitted=self._mac_admitted,
        )

    def inference_token(self) -> tuple:
        """Identity fingerprint of the kernel's captures (see BiSAGE)."""
        return (
            id(self.graph),
            tuple(id(w) for w in self.weights),
            id(self._cache_v),
            self._macs_aggregated,
            id(self._mac_admitted),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All trainable layer weights."""
        return list(self.weights)

    def state_dict(self) -> dict:
        """Checkpointable state: config, weights and inference caches.

        Mirrors :meth:`repro.embedding.bisage.BiSAGE.state_dict`: the
        per-layer caches are saved verbatim so a restored model
        reproduces inductive embeddings bit-for-bit; the bound graph is
        saved separately by the owner.
        """
        self._require_fitted()
        state: dict = {
            "config": self.config.to_dict(),
            "macs_aggregated": self._macs_aggregated,
            "loss_history": [float(x) for x in self.loss_history],
            "parameters": export_parameters(self.parameters()),
        }
        if self._mac_admitted is not None:
            state["macs_admitted"] = np.flatnonzero(
                self._mac_admitted[self._macs_aggregated:]) + self._macs_aggregated
        for name in ("u", "v"):
            layers = getattr(self, f"_cache_{name}")
            state[f"cache_{name}"] = {str(k): layer.copy() for k, layer in enumerate(layers)}
        return state

    def load_state_dict(self, state: dict, graph: WeightedBipartiteGraph) -> "GraphSAGE":
        """Restore a model saved by :meth:`state_dict` onto ``graph``."""
        cfg = self.config
        saved_cfg = GraphSAGEConfig.from_dict(state["config"])
        if saved_cfg != cfg:
            raise ValueError("checkpoint config does not match this model's config; "
                             f"saved {saved_cfg}, constructed with {cfg}")
        self.weights = [Parameter(np.zeros((2 * cfg.dim, cfg.dim))) for _ in range(cfg.num_layers)]
        load_parameters(self.parameters(), state["parameters"])
        for name in ("u", "v"):
            saved = state[f"cache_{name}"]
            layers = [np.asarray(saved[str(k)], dtype=np.float64) for k in range(len(saved))]
            if len(layers) != cfg.num_layers + 1:
                raise ValueError(f"cache_{name} has {len(layers)} layers, expected {cfg.num_layers + 1}")
            for layer in layers:
                if layer.shape[1] != cfg.dim:
                    raise ValueError(f"cache_{name} dimension {layer.shape[1]} != config dim {cfg.dim}")
            setattr(self, f"_cache_{name}", layers)
        num_u = self._cache_u[0].shape[0]
        if num_u > graph.num_records:
            raise ValueError(f"cached {num_u} record nodes but graph has only {graph.num_records}")
        self._macs_aggregated = int(state["macs_aggregated"])
        if self._macs_aggregated > graph.num_macs:
            raise ValueError(f"macs_aggregated={self._macs_aggregated} exceeds graph's {graph.num_macs} MACs")
        self._mac_admitted = admitted_mask(state.get("macs_admitted"),
                                           self._macs_aggregated, graph.num_macs)
        self.loss_history = [float(x) for x in state.get("loss_history", [])]
        self.graph = graph
        return self


def _l2_rows(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    if x.ndim == 1:
        return x / np.sqrt((x * x).sum() + eps)
    norms = np.sqrt((x * x).sum(axis=1, keepdims=True) + eps)
    return x / norms
