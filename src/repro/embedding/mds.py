"""Classical multidimensional scaling baseline ("MDS + OD", Sec. V).

Following the paper's convention, pairwise distance between imputed
record vectors is ``1 - cosine similarity``.  Training embeds the n×n
distance matrix by double centering + eigendecomposition (Torgerson);
streamed records are embedded with the Nyström / Gower out-of-sample
extension (Bengio et al., 2004) so the baseline can participate in the
online protocol.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["ClassicalMDS", "cosine_distance_matrix", "cosine_distances_to"]


def _row_normalize(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    return x / np.maximum(norms, eps)


def cosine_distance_matrix(x: np.ndarray) -> np.ndarray:
    """Pairwise ``1 - cosine`` distances between rows of ``x``."""
    unit = _row_normalize(np.asarray(x, dtype=np.float64))
    similarity = np.clip(unit @ unit.T, -1.0, 1.0)
    distances = 1.0 - similarity
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def cosine_distances_to(x_train: np.ndarray, x_new: np.ndarray) -> np.ndarray:
    """``1 - cosine`` distances from each new row to each training row."""
    unit_train = _row_normalize(np.asarray(x_train, dtype=np.float64))
    unit_new = _row_normalize(np.atleast_2d(np.asarray(x_new, dtype=np.float64)))
    similarity = np.clip(unit_new @ unit_train.T, -1.0, 1.0)
    return np.maximum(1.0 - similarity, 0.0)


class ClassicalMDS:
    """Torgerson MDS with Nyström out-of-sample extension."""

    def __init__(self, dim: int = 32):
        check_positive_int(dim, "dim")
        self.dim = dim
        self._x_train: np.ndarray | None = None
        self._eigenvectors: np.ndarray | None = None
        self._eigenvalues: np.ndarray | None = None
        self._sq_row_means: np.ndarray | None = None
        self._sq_grand_mean: float = 0.0
        self.embedding_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "ClassicalMDS":
        """Fit on an (n, features) imputed matrix; stores the training embedding."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or len(x) < 2:
            raise ValueError("MDS requires at least two training rows")
        distances = cosine_distance_matrix(x)
        squared = distances**2
        n = len(x)
        centering = np.eye(n) - np.ones((n, n)) / n
        gram = -0.5 * centering @ squared @ centering
        gram = (gram + gram.T) / 2.0  # enforce symmetry against rounding
        eigenvalues, eigenvectors = np.linalg.eigh(gram)
        order = np.argsort(eigenvalues)[::-1]
        keep = order[: self.dim]
        values = np.maximum(eigenvalues[keep], 0.0)
        # eigh hands back Fortran-ordered vectors; normalise to C order so
        # transform()'s matmul rounds identically before and after a
        # state_dict round trip (BLAS kernels differ per memory layout).
        vectors = np.ascontiguousarray(eigenvectors[:, keep])

        self._x_train = x.copy()
        self._eigenvalues = values
        self._eigenvectors = vectors
        self._sq_row_means = squared.mean(axis=1)
        self._sq_grand_mean = float(squared.mean())
        embedding = vectors * np.sqrt(values)[None, :]
        self.embedding_ = self._pad(embedding)
        return self

    def _pad(self, embedding: np.ndarray) -> np.ndarray:
        """Zero-pad when fewer than ``dim`` positive eigenvalues exist."""
        if embedding.shape[1] >= self.dim:
            return embedding[:, : self.dim]
        pad = np.zeros((embedding.shape[0], self.dim - embedding.shape[1]))
        return np.hstack([embedding, pad])

    def transform(self, x_new: np.ndarray) -> np.ndarray:
        """Nyström embedding of new rows against the training set."""
        if self._x_train is None:
            raise RuntimeError("MDS has not been fitted; call fit first")
        d_new = cosine_distances_to(self._x_train, x_new) ** 2
        # Gower/Bengio centred kernel against training landmarks.
        kernel = -0.5 * (d_new
                         - self._sq_row_means[None, :]
                         - d_new.mean(axis=1, keepdims=True)
                         + self._sq_grand_mean)
        values = self._eigenvalues
        safe = np.where(values > 1e-12, values, np.inf)
        coords = kernel @ self._eigenvectors / np.sqrt(safe)[None, :]
        return self._pad(coords)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: the fitted spectral decomposition.

        ``transform`` is a deterministic function of these arrays, so a
        restored model embeds out-of-sample rows bit-for-bit identically.
        """
        if self._x_train is None:
            raise RuntimeError("cannot checkpoint an unfitted MDS model")
        return {
            "dim": self.dim,
            "x_train": self._x_train.copy(),
            "eigenvectors": self._eigenvectors.copy(),
            "eigenvalues": self._eigenvalues.copy(),
            "sq_row_means": self._sq_row_means.copy(),
            "sq_grand_mean": self._sq_grand_mean,
            "embedding": self.embedding_.copy(),
        }

    def load_state_dict(self, state: dict) -> "ClassicalMDS":
        """Restore a model saved by :meth:`state_dict`."""
        if int(state["dim"]) != self.dim:
            raise ValueError(f"checkpoint dim {state['dim']} does not match "
                             f"this model's dim {self.dim}")
        x_train = np.asarray(state["x_train"], dtype=np.float64)
        eigenvectors = np.asarray(state["eigenvectors"], dtype=np.float64)
        if eigenvectors.shape[0] != len(x_train):
            raise ValueError(f"eigenvectors for {eigenvectors.shape[0]} rows but "
                             f"{len(x_train)} training rows")
        self._x_train = x_train
        self._eigenvectors = eigenvectors
        self._eigenvalues = np.asarray(state["eigenvalues"], dtype=np.float64)
        self._sq_row_means = np.asarray(state["sq_row_means"], dtype=np.float64)
        self._sq_grand_mean = float(state["sq_grand_mean"])
        self.embedding_ = np.asarray(state["embedding"], dtype=np.float64)
        return self
