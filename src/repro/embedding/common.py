"""Shared machinery for the SAGE-family embedders.

Both BiSAGE and the homogeneous GraphSAGE baseline view the bipartite
graph through a *global* node numbering — record ``i`` is node ``i`` and
MAC ``j`` is node ``num_records + j`` — and aggregate neighbourhoods via
row-stochastic sparse matrices.  This module builds those matrices,
performs vectorised weighted neighbour sampling, and generates the
deterministic random initial embeddings (``h^0``/``l^0`` "chosen
randomly", Sec. III-B) so that a node's initial embedding is a pure
function of (seed, salt, node id) and is reproducible as the graph grows.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.graph.bipartite import WeightedBipartiteGraph
from repro.nn.sparse import row_normalized_csr
from repro.utils.rng import as_rng

__all__ = [
    "global_csr",
    "full_aggregation_matrix",
    "sampled_aggregation_matrix",
    "sample_neighbors_batch",
    "initial_embeddings",
    "initial_embedding_row",
    "admitted_mask",
    "threshold_admissions",
]


def threshold_admissions(graph, boundary: int,
                         threshold: int | None) -> np.ndarray | None:
    """Support-threshold MAC admission mask for a coordinated refresh.

    Admits every trained MAC (index below ``boundary``) plus any
    post-boundary MAC sensed by at least ``threshold`` attached
    observations.  Returns ``None`` when no post-boundary MAC qualifies
    (or ``threshold`` is ``None``) — the boundary alone then decides,
    which keeps pre-admission checkpoints byte-identical.
    """
    if threshold is None:
        return None
    if threshold < 1:
        raise ValueError(f"admit_new_macs_after must be >= 1 or None, "
                         f"got {threshold}")
    _, mac_degrees = graph.degrees()
    mask = np.zeros(graph.num_macs, dtype=bool)
    mask[:boundary] = True
    mask[boundary:] = mac_degrees[boundary:] >= threshold
    return mask if mask[boundary:].any() else None


def admitted_mask(indices, boundary: int, num_macs: int) -> np.ndarray | None:
    """Rebuild a support-threshold MAC admission mask from a checkpointed
    index list (BiSAGE/GraphSAGE ``macs_admitted`` state).

    ``None`` (or an empty list) means no threshold admissions are
    active — the trained-universe ``boundary`` alone decides.  Indices
    must name post-boundary MACs that exist in the bound graph.
    """
    if indices is None:
        return None
    indices = np.asarray(indices, dtype=np.int64).ravel()
    if indices.size == 0:
        return None
    if indices.min() < boundary or indices.max() >= num_macs:
        raise ValueError(f"macs_admitted indices must lie in [{boundary}, {num_macs}); "
                         f"got range [{indices.min()}, {indices.max()}]")
    mask = np.zeros(num_macs, dtype=bool)
    mask[:boundary] = True
    mask[indices] = True
    return mask


def global_csr(graph: WeightedBipartiteGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten the bipartite adjacency into global-id CSR arrays.

    Returns ``(indptr, indices, weights)`` over ``N = num_records +
    num_macs`` rows; record rows come first.  Neighbour indices are
    global ids in the opposite partition.
    """
    num_records = graph.num_records
    num_macs = graph.num_macs
    rows_u, cols_v, weights_uv = graph.record_adjacency()

    indptr = np.zeros(num_records + num_macs + 1, dtype=np.int64)
    # Degrees per row.
    if len(rows_u):
        np.add.at(indptr, rows_u + 1, 1)
        np.add.at(indptr, num_records + cols_v + 1, 1)
    np.cumsum(indptr, out=indptr)

    indices = np.empty(2 * len(rows_u), dtype=np.int64)
    weights = np.empty(2 * len(rows_u), dtype=np.float64)
    cursor = indptr[:-1].copy()
    # Record rows point at MAC nodes (offset), MAC rows point back.
    for u, v, w in zip(rows_u, cols_v, weights_uv):
        pos = cursor[u]
        indices[pos] = num_records + v
        weights[pos] = w
        cursor[u] += 1
        pos = cursor[num_records + v]
        indices[pos] = u
        weights[pos] = w
        cursor[num_records + v] += 1
    return indptr, indices, weights


def full_aggregation_matrix(indptr, indices, weights, num_nodes: int) -> sp.csr_matrix:
    """Row-stochastic matrix over *all* neighbours (Eq. 8 in expectation).

    Equivalent to weighted neighbour sampling with an infinite sample
    size; used when ``sample_size=None`` for deterministic, faster runs.
    """
    degrees = np.diff(indptr)
    rows = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    return row_normalized_csr(rows, indices, weights, shape=(num_nodes, num_nodes))


def sample_neighbors_batch(indptr, indices, weights, sample_size: int, rng) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised weighted sampling of ``sample_size`` neighbours per node.

    Nodes whose degree is at most ``sample_size`` keep their full
    neighbourhood (sampling with replacement would only add variance).
    Returns COO triples (rows, cols, edge weights).
    """
    rng = as_rng(rng)
    num_nodes = len(indptr) - 1
    degrees = np.diff(indptr)

    small = degrees <= sample_size
    # Full neighbourhoods for small-degree nodes.
    rows_small = np.repeat(np.arange(num_nodes)[small], degrees[small])
    if len(rows_small):
        keep_mask = np.zeros(len(indices), dtype=bool)
        for node in np.nonzero(small)[0]:
            keep_mask[indptr[node]:indptr[node + 1]] = True
        cols_small = indices[keep_mask]
        weights_small = weights[keep_mask]
    else:
        cols_small = np.empty(0, dtype=np.int64)
        weights_small = np.empty(0, dtype=np.float64)

    big_nodes = np.nonzero(~small & (degrees > 0))[0]
    if len(big_nodes) == 0:
        return rows_small, cols_small, weights_small

    # Inverse-CDF trick shared across rows: map each row's cumulative
    # weights into the interval [row_rank, row_rank + 1) and answer all
    # draws with one searchsorted over the concatenation.
    segments = []
    for rank, node in enumerate(big_nodes):
        w = weights[indptr[node]:indptr[node + 1]]
        cdf = np.cumsum(w)
        segments.append(rank + cdf / cdf[-1])
    global_cdf = np.concatenate(segments)
    seg_offsets = np.cumsum([0] + [degrees[node] for node in big_nodes])

    draws = rng.random((len(big_nodes), sample_size)) + np.arange(len(big_nodes))[:, None]
    positions = np.searchsorted(global_cdf, draws.ravel(), side="right")
    positions = np.minimum(positions, len(global_cdf) - 1)
    # Convert flat segment positions back into adjacency positions.
    ranks = np.repeat(np.arange(len(big_nodes)), sample_size)
    local = positions - seg_offsets[ranks]
    local = np.clip(local, 0, degrees[big_nodes][ranks] - 1)
    adjacency_pos = indptr[big_nodes][ranks] + local

    rows_big = np.repeat(big_nodes, sample_size)
    cols_big = indices[adjacency_pos]
    weights_big = weights[adjacency_pos]

    return (np.concatenate([rows_small, rows_big]),
            np.concatenate([cols_small, cols_big]),
            np.concatenate([weights_small, weights_big]))


def sampled_aggregation_matrix(indptr, indices, weights, num_nodes: int,
                               sample_size: int | None, rng) -> sp.csr_matrix:
    """Aggregation matrix with weighted neighbour sampling (Eq. 8)."""
    if sample_size is None:
        return full_aggregation_matrix(indptr, indices, weights, num_nodes)
    rows, cols, w = sample_neighbors_batch(indptr, indices, weights, sample_size, rng)
    return row_normalized_csr(rows, cols, w, shape=(num_nodes, num_nodes))


def initial_embedding_row(dim: int, seed: int, salt: int, node_id: int) -> np.ndarray:
    """Deterministic unit-norm random initial embedding for one node.

    ``node_id`` may be negative (sentinel identities such as the shared
    inference-node key); SeedSequence entropy must be non-negative, so
    ids are shifted into the positive range.
    """
    rng = np.random.default_rng(np.random.SeedSequence(entropy=(seed, salt, node_id + 2**31)))
    row = rng.standard_normal(dim)
    norm = np.linalg.norm(row)
    return row / norm if norm > 0 else row


def initial_embeddings(num_nodes: int, dim: int, seed: int, salt: int,
                       start: int = 0) -> np.ndarray:
    """Deterministic initial embeddings for nodes ``start .. start+num-1``.

    Row ``i`` depends only on (seed, salt, start + i), so appending nodes
    later reproduces exactly the same earlier rows.
    """
    out = np.empty((num_nodes, dim), dtype=np.float64)
    for i in range(num_nodes):
        out[i] = initial_embedding_row(dim, seed, salt, start + i)
    return out
