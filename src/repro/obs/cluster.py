"""Cluster-wide observability: merge worker snapshots at the router.

PR 6 gave every process its own registry, tracer, and health probes;
PR 7 put N worker processes behind a router.  This module is the fold
that makes the router the single observability endpoint for the whole
cluster, working entirely on the *snapshot* forms that ship over the
cluster protocol (no live objects cross a process boundary):

* :func:`merge_worker_snapshots` — pure aggregation of per-worker
  families dicts: counters sum, gauges sum or take the max per family
  semantics (:func:`gauge_merge_mode`), histograms fold through
  :func:`~repro.obs.metrics.merged_histogram`.  Merging one worker's
  snapshot returns it byte-for-byte, so a one-worker cluster exports
  exactly what that worker would have.
* :func:`cluster_families` — the export form `Router.metrics()` serves:
  router-local families pass through, every worker family appears both
  aggregated (no ``worker`` label) and per-worker (``worker="0"`` ...),
  because worker-local label values collide across workers (each worker
  numbers its own shards from zero) and only the ``worker`` label keeps
  them apart.  Worker ``repro_health_*`` gauges are dropped here — the
  rollup re-expresses health with ``(probe, worker)`` labels.
* :func:`stitch_traces` — grafts worker slow traces under the router
  spans that caused them, matching the worker root's ``parent_id``
  against router span ids (:meth:`~repro.obs.tracing.Tracer.inject`),
  so ``repro obs render`` shows one router→worker tree per slow request.
* :class:`ClusterHealthMonitor` — folds per-worker probe grades
  (worst-of per probe), worker liveness (any dead or unresponsive
  worker ⇒ critical ``worker_up``), and the standby's replication lag
  into one graded report, mirrored into ``repro_health_*`` gauges with
  ``(probe, worker)`` labels.
"""

from __future__ import annotations

import copy
from typing import Mapping, Sequence

from repro.obs.health import ProbeResult, STATUS_LEVELS, grade
from repro.obs.metrics import merged_family

__all__ = [
    "ClusterHealthMonitor",
    "cluster_families",
    "gauge_merge_mode",
    "merge_worker_snapshots",
    "stitch_traces",
]


def gauge_merge_mode(name: str) -> str:
    """Cross-process fold for a gauge family: ``"sum"`` or ``"max"``.

    Additive gauges (queue depths, quarantine depths, resident counts)
    sum — the cluster total is the operational number.  Level-style
    gauges (ages, lags, chain lengths, probe grades) take the max:
    adding one worker's staleness to another's is meaningless, the
    worst worker is the signal.
    """
    if name.startswith("repro_health_"):
        return "max"
    if name.endswith(("_age_seconds", "_lag", "_lag_seconds", "_chain_length")):
        return "max"
    return "sum"


def merge_worker_snapshots(snapshots: Sequence[Mapping]) -> dict:
    """Fold per-worker families dicts into one aggregate families dict.

    ``snapshots`` is a sequence of ``{family name: family snapshot}``
    mappings (one per worker, the registry ``snapshot()`` form shipped
    by the ``obs_snapshot`` protocol op).  Families missing from some
    workers merge over the workers that have them.  Raises on an empty
    worker set — an aggregate of nothing is a bug upstream, not zero.
    """
    snapshots = list(snapshots)
    if not snapshots:
        raise ValueError("no worker snapshots to merge (empty worker set)")
    names = sorted({name for families in snapshots for name in families})
    return {name: merged_family([families[name] for families in snapshots
                                 if name in families],
                                gauge_mode=gauge_merge_mode(name))
            for name in names}


def cluster_families(router_families: Mapping,
                     worker_families: Mapping[int, Mapping]) -> dict:
    """Build the merged export form served by ``Router.metrics()``.

    ``router_families`` (the router's own registry snapshot) passes
    through untouched; its names (``repro_router_*``,
    ``repro_replication_*``, ``repro_health_*``) are disjoint from
    worker families by construction and win on collision.  Each worker
    family contributes an aggregated series per label set (no
    ``worker`` key, values folded per :func:`gauge_merge_mode`) plus
    one series per worker tagged ``worker=str(index)``.
    """
    out = {name: family for name, family in router_families.items()}
    names = sorted({name for families in worker_families.values()
                    for name in families})
    for name in names:
        if name.startswith("repro_health_") or name in out:
            continue
        present = {index: worker_families[index][name]
                   for index in sorted(worker_families)
                   if name in worker_families[index]}
        merged = merged_family(list(present.values()),
                               gauge_mode=gauge_merge_mode(name))
        series = [dict(entry) for entry in merged["series"]]
        for index, family in present.items():
            for entry in family["series"]:
                row = dict(entry)
                row["labels"] = {**entry["labels"], "worker": str(index)}
                series.append(row)
        folded: dict = {"type": merged["type"], "help": merged["help"],
                        "labels": merged["labels"] + ["worker"],
                        "series": series}
        if "bounds" in merged:
            folded["bounds"] = merged["bounds"]
        out[name] = folded
    return out


def _index_spans(trace: dict, index: dict[str, dict]) -> None:
    span_id = trace.get("span_id")
    if span_id is not None:
        index[span_id] = trace
    for child in trace.get("children", ()):
        _index_spans(child, index)


def stitch_traces(router_traces: Mapping | None,
                  worker_traces: Mapping[int, Mapping | None]) -> dict:
    """Join router and worker tracer snapshots into one span forest.

    Worker slow traces whose root carries a ``parent_id`` minted by the
    router are grafted under that router span (deep-copied — tracer
    snapshots share their ring's dicts); the rest are kept standalone.
    Either way the worker's spans gain a ``worker`` attribute.  Span
    aggregates merge by name across all processes.
    """
    merged_spans: dict[str, dict] = {}
    slow: list[dict] = []
    threshold = 0.0
    if router_traces:
        threshold = router_traces.get("slow_threshold", 0.0)
        for name, entry in router_traces.get("spans", {}).items():
            merged_spans[name] = dict(entry)
        slow = copy.deepcopy(list(router_traces.get("slow_traces", ())))
    by_span_id: dict[str, dict] = {}
    for trace in slow:
        _index_spans(trace, by_span_id)
    orphans: list[dict] = []
    for index in sorted(worker_traces):
        traces = worker_traces[index]
        if not traces:
            continue
        for name, entry in traces.get("spans", {}).items():
            slot = merged_spans.setdefault(name, {"count": 0, "seconds": 0.0})
            slot["count"] += entry["count"]
            slot["seconds"] += entry["seconds"]
        for trace in traces.get("slow_traces", ()):
            graft = copy.deepcopy(trace)
            attrs = dict(graft.get("attrs", {}))
            attrs["worker"] = str(index)
            graft["attrs"] = attrs
            parent = by_span_id.get(graft.get("parent_id"))
            if parent is not None:
                parent.setdefault("children", []).append(graft)
            else:
                orphans.append(graft)
    slow.extend(orphans)
    return {"slow_threshold": threshold,
            "spans": {name: merged_spans[name] for name in sorted(merged_spans)},
            "slow_traces": slow}


class ClusterHealthMonitor:
    """Grade the whole cluster from worker reports plus router-side facts.

    Stateless between checks: every :meth:`check` folds the probe
    dicts the workers shipped (``ProbeResult.as_dict()`` form), the
    per-worker liveness the router observed, and the standby's
    replication lag.  Results mirror into ``repro_health_value`` /
    ``repro_health_status`` gauges labeled ``(probe, worker)`` —
    ``worker="cluster"`` for folded grades, ``worker="router"`` for the
    replication probe, ``worker="<i>"`` for raw per-worker readings.
    """

    def __init__(self, metrics=None,
                 replication_lag: tuple[float, float] = (5.0, 30.0)):
        self.replication_thresholds = (float(replication_lag[0]),
                                       float(replication_lag[1]))
        self._metrics = metrics
        if metrics is not None:
            self._value_gauge = metrics.gauge(
                "repro_health_value",
                help="Raw value of each health probe, per worker and folded",
                labels=("probe", "worker"))
            self._status_gauge = metrics.gauge(
                "repro_health_status",
                help="Probe status: 0=ok 1=warn 2=critical",
                labels=("probe", "worker"))

    # ------------------------------------------------------------------
    def check(self, worker_up: Mapping[int, bool],
              worker_probes: Mapping[int, Mapping | None] | None = None,
              replication_lag: float = 0.0) -> dict[str, ProbeResult]:
        """Folded cluster report: ``{probe name: ProbeResult}``."""
        folded, _ = self._evaluate(worker_up, worker_probes or {},
                                   replication_lag)
        return folded

    def report(self, worker_up: Mapping[int, bool],
               worker_probes: Mapping[int, Mapping | None] | None = None,
               replication_lag: float = 0.0) -> dict:
        """Folded + per-worker report, JSON-ready for CLI tables."""
        folded, per_worker = self._evaluate(worker_up, worker_probes or {},
                                            replication_lag)
        worst = max(folded.values(), key=lambda result: result.level)
        return {
            "status": worst.status,
            "probes": {name: result.as_dict()
                       for name, result in folded.items()},
            "workers": {str(index): {name: result.as_dict()
                                     for name, result in probes.items()}
                        for index, probes in per_worker.items()},
        }

    # ------------------------------------------------------------------
    def _evaluate(self, worker_up, worker_probes, replication_lag):
        per_worker: dict[int, dict[str, ProbeResult]] = {}
        for index in sorted(worker_probes):
            probes = worker_probes[index]
            if not probes:
                continue
            per_worker[index] = {
                name: ProbeResult.from_dict(entry)
                for name, entry in sorted(probes.items())}

        folded: dict[str, ProbeResult] = {}
        down = sorted(index for index in worker_up if not worker_up[index])
        folded["worker_up"] = ProbeResult(
            probe="worker_up", value=float(len(down)),
            status="critical" if down else "ok",
            warn_at=1.0, critical_at=1.0,
            detail=(f"workers {down} dead or unresponsive — their hash "
                    "slices are not being served" if down else ""))
        names = sorted({name for probes in per_worker.values()
                        for name in probes})
        for name in names:
            worst_index, worst = max(
                ((index, probes[name]) for index, probes in per_worker.items()
                 if name in probes),
                key=lambda item: (item[1].level, item[1].value, -item[0]))
            detail = (f"worker {worst_index}: {worst.detail}"
                      if worst.detail else f"worst of worker {worst_index}")
            folded[name] = ProbeResult(
                probe=name, value=worst.value, status=worst.status,
                warn_at=worst.warn_at, critical_at=worst.critical_at,
                detail=detail)
        lag = float(replication_lag)
        warn_at, critical_at = self.replication_thresholds
        folded["replication_lag"] = ProbeResult(
            probe="replication_lag", value=lag,
            status=grade(lag, warn_at, critical_at),
            warn_at=warn_at, critical_at=critical_at,
            detail=(f"newest standby apply ran {lag:.2f}s after its commit"
                    if lag else ""))

        if self._metrics is not None:
            for name, result in folded.items():
                worker = "router" if name == "replication_lag" else "cluster"
                self._value_gauge.labels(probe=name, worker=worker).set(result.value)
                self._status_gauge.labels(probe=name, worker=worker).set(result.level)
            for index, up in sorted(worker_up.items()):
                level = STATUS_LEVELS["ok" if up else "critical"]
                self._value_gauge.labels(probe="worker_up",
                                         worker=str(index)).set(0.0 if up else 1.0)
                self._status_gauge.labels(probe="worker_up",
                                          worker=str(index)).set(level)
            for index, probes in per_worker.items():
                for name, result in probes.items():
                    self._value_gauge.labels(
                        probe=name, worker=str(index)).set(result.value)
                    self._status_gauge.labels(
                        probe=name, worker=str(index)).set(result.level)
        return folded, per_worker
