"""Export surfaces for :mod:`repro.obs.metrics` snapshots.

Two serialisations of the same deterministic snapshot dict:

* :func:`render_prometheus` — the text exposition format (version
  0.0.4) a Prometheus scrape expects: ``# HELP`` / ``# TYPE`` headers,
  one line per series, histograms as cumulative ``_bucket{le=...}``
  plus ``_sum`` / ``_count``.  Rendering works from the snapshot, not
  live metric objects, so a scrape handler can serve a consistent
  point-in-time view (and tests can assert on a frozen snapshot).
* :func:`snapshot_to_json` / :func:`snapshot_from_json` — canonical
  JSON (sorted keys, no float mangling) that round-trips exactly; the
  same snapshot state always yields the same bytes.

:class:`MetricsDumper` is the opt-in background recorder: a daemon
thread that appends one ``{"at": ..., ...snapshot...}`` JSONL line per
interval (plus a final line at stop), giving every benchmark or daemon
run a self-contained metrics trail that ``python -m repro obs render``
can pretty-print after the fact.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Mapping

from repro.obs.metrics import bucket_quantile

__all__ = [
    "MetricsDumper",
    "diff_snapshots",
    "histogram_percentiles",
    "render_prometheus",
    "snapshot_from_json",
    "snapshot_to_json",
]


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_labels(labels: Mapping[str, str], extra: tuple[str, str] | None = None) -> str:
    items = list(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape_label(str(value))}"' for name, value in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound) -> str:
    if bound == "+Inf":
        return "+Inf"
    return _format_value(float(bound))


def _families_of(snapshot: Mapping) -> Mapping:
    """Accept a bare families dict or a full ``runtime.metrics()`` dict."""
    families = snapshot.get("families", snapshot)
    return families if isinstance(families, Mapping) else snapshot


def render_prometheus(snapshot: Mapping) -> str:
    """Render a metrics snapshot as Prometheus text exposition."""
    lines: list[str] = []
    families = _families_of(snapshot)
    for name in sorted(families):
        family = families[name]
        if not isinstance(family, Mapping) or "type" not in family:
            continue
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for entry in family["series"]:
            labels = entry.get("labels", {})
            if family["type"] == "histogram":
                for bound, cumulative in entry["buckets"]:
                    lines.append(f"{name}_bucket"
                                 f"{_format_labels(labels, ('le', _format_bound(bound)))}"
                                 f" {_format_value(cumulative)}")
                lines.append(f"{name}_sum{_format_labels(labels)} "
                             f"{_format_value(entry['sum'])}")
                lines.append(f"{name}_count{_format_labels(labels)} "
                             f"{_format_value(entry['count'])}")
            else:
                lines.append(f"{name}{_format_labels(labels)} "
                             f"{_format_value(entry['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def histogram_percentiles(entry: Mapping, quantiles=(0.5, 0.9, 0.99)) -> dict[str, float | None]:
    """p50/p90/p99 estimates from one snapshot-form histogram series.

    The snapshot stores cumulative counts (exposition form); this
    de-cumulates and reuses the same interpolation the live
    :class:`~repro.obs.metrics.Histogram` applies, so a percentile read
    from a JSONL dump matches what the runtime would have reported.
    """
    bounds = [bound for bound, _ in entry["buckets"] if bound != "+Inf"]
    cumulative = [count for _, count in entry["buckets"]]
    counts, previous = [], 0
    for value in cumulative:
        counts.append(value - previous)
        previous = value
    return {f"p{int(q * 100)}": bucket_quantile(bounds, counts, q)
            for q in quantiles}


def _series_key(labels: Mapping) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def diff_snapshots(earlier: Mapping, later: Mapping) -> dict:
    """Counter deltas and interval rates between two metrics snapshots.

    Both arguments accept the same shapes as :func:`render_prometheus`
    (bare families dict, a full ``runtime.metrics()`` dict, or a
    :class:`MetricsDumper` JSONL line — whose ``"at"`` timestamps, when
    present on both sides, supply the interval for per-second rates).
    Series are matched by label set; a series absent from ``earlier``
    diffs against zero, so a freshly-started dump still yields totals.

    Counters and histogram counts report ``delta`` (and ``rate`` when an
    interval is known); a negative counter delta means the process
    restarted between the snapshots and is reported as-is rather than
    clamped.  Gauges report the current value alongside the delta, since
    a gauge delta without its level is rarely actionable.
    """
    fam_a, fam_b = _families_of(earlier), _families_of(later)
    at_a, at_b = earlier.get("at"), later.get("at")
    interval: float | None = None
    if isinstance(at_a, (int, float)) and isinstance(at_b, (int, float)):
        interval = float(at_b) - float(at_a)
    def rate(delta: float) -> float | None:
        return delta / interval if interval and interval > 0 else None
    families: dict[str, dict] = {}
    for name in sorted(fam_b):
        family = fam_b[name]
        if not isinstance(family, Mapping) or "type" not in family:
            continue
        kind = family["type"]
        previous = {}
        before = fam_a.get(name)
        if isinstance(before, Mapping) and before.get("type") == kind:
            previous = {_series_key(entry.get("labels", {})): entry
                        for entry in before["series"]}
        series = []
        for entry in family["series"]:
            labels = entry.get("labels", {})
            prior = previous.get(_series_key(labels))
            row: dict = {"labels": dict(labels)}
            if kind == "histogram":
                count_before = prior["count"] if prior else 0
                sum_before = prior["sum"] if prior else 0.0
                row["delta"] = entry["count"] - count_before
                row["delta_sum"] = entry["sum"] - sum_before
                row["rate"] = rate(row["delta"])
            else:
                value_before = prior["value"] if prior else 0.0
                row["delta"] = entry["value"] - value_before
                if kind == "gauge":
                    row["value"] = entry["value"]
                else:
                    row["rate"] = rate(row["delta"])
            series.append(row)
        families[name] = {"type": kind, "series": series}
    return {"interval_seconds": interval, "families": families}


def snapshot_to_json(snapshot: Mapping) -> str:
    """Canonical JSON: same snapshot state, same bytes."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def snapshot_from_json(text: str) -> dict:
    return json.loads(text)


class MetricsDumper:
    """Background JSONL appender for metrics snapshots.

    Parameters
    ----------
    source:
        Zero-argument callable returning the snapshot dict to record
        (typically ``runtime.metrics``).
    path:
        JSONL file to append to (created with parents if missing).
    interval:
        Seconds between dumps.
    """

    def __init__(self, source: Callable[[], Mapping], path: str | Path,
                 interval: float = 5.0):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.source = source
        self.path = Path(path)
        self.interval = interval
        self.lines_written = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def dump_now(self) -> None:
        """Append one snapshot line synchronously."""
        line = dict(self.source())
        line["at"] = time.time()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(line, sort_keys=True) + "\n")
        self.lines_written += 1

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MetricsDumper":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-metrics-dumper", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the thread and write one final snapshot line.

        The final line means even a run shorter than one interval leaves
        a usable trail.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None
        self.dump_now()

    def __enter__(self) -> "MetricsDumper":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.dump_now()
            except OSError:  # pragma: no cover - disk-full style failures
                # Recording must never take the serving process down;
                # the next interval retries.
                pass
