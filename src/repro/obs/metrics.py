"""Lock-cheap metrics primitives: counters, gauges, bucketed histograms.

The serving runtime needs visibility without a price: the observe path
is the hot path, so every primitive here is a plain python object whose
update is a couple of dict-free attribute operations under a per-child
lock (never a registry-wide one — observers on different shards touch
different children and never contend).  Labeled *families*
(``shard``, ``tenant_class``, ``op``, ...) resolve to child instances
once; callers cache the child and pay only the increment afterwards.

Latency percentiles are streamed, not stored: :class:`Histogram` keeps
fixed cumulative-style buckets (counts per bucket + sum + count), and
:meth:`Histogram.quantile` interpolates p50/p90/p99 from the bucket the
target rank falls in — the same estimate Prometheus's
``histogram_quantile`` computes server-side, available here without an
external scrape.  Per-shard histograms over the same bounds
:meth:`~Histogram.merge` exactly (bucket counts are additive), so the
runtime's cross-shard export is the histogram of the merged stream.

:meth:`MetricsRegistry.snapshot` is deterministic — families sorted by
name, series sorted by label values, buckets rendered cumulatively with
a terminal ``"+Inf"`` — so snapshots diff cleanly and serialise to
byte-identical JSON for the same counter state.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "bucket_quantile",
    "merged_family",
    "merged_histogram",
]

# Upper bounds (seconds, `le` semantics) spanning ~0.1 ms to 10 s: wide
# enough for an in-memory observe and a full reprovision on one scale.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def bucket_quantile(bounds: Sequence[float], counts: Sequence[int], q: float) -> float | None:
    """Estimate the q-quantile from per-bucket counts.

    ``bounds`` are the finite upper bounds (``le``); ``counts`` has one
    extra terminal entry for the overflow (+Inf) bucket.  Linear
    interpolation inside the chosen bucket, from a lower edge of 0 for
    the first (latencies are non-negative); a rank landing in the
    overflow bucket clamps to the largest finite bound — the honest
    answer a bounded histogram can give.  Returns None when empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    target = q * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= target:
            if index >= len(bounds):        # overflow bucket
                return float(bounds[-1])
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (target - cumulative) / count
            return float(lower + (upper - lower) * min(max(fraction, 0.0), 1.0))
        cumulative += count
    return float(bounds[-1])  # pragma: no cover - unreachable (total > 0)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Value that can go anywhere."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket streaming histogram (counts + sum, no samples)."""

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)   # terminal +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_repeated(self, value: float, count: int) -> None:
        """Fold ``count`` identical samples in one locked update.

        The batch data plane attributes a batch's elapsed time evenly
        across its records; all those samples share a bucket, so one
        lock acquisition replaces ``count`` of them.
        """
        if count < 0:
            raise ValueError(f"sample count cannot be negative; got {count}")
        if count == 0:
            return
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += count
            self._sum += value * count
            self._count += count

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float | None:
        with self._lock:
            counts = list(self._counts)
        return bucket_quantile(self.bounds, counts, q)

    def percentiles(self) -> dict[str, float | None]:
        """The operational trio, one lock acquisition."""
        with self._lock:
            counts = list(self._counts)
        return {f"p{int(q * 100)}": bucket_quantile(self.bounds, counts, q)
                for q in (0.5, 0.9, 0.99)}

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram over the same bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError(f"cannot merge histograms with different bounds: "
                             f"{self.bounds} vs {other.bounds}")
        with other._lock:
            counts = list(other._counts)
            total, n = other._sum, other._count
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += count
            self._sum += total
            self._count += n

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        with self._lock:
            return list(self._counts)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its labeled children.

    ``labels(shard="0", op="observe")`` resolves (creating on first use)
    the child for that label combination; the unlabeled family of an
    empty label set proxies ``inc``/``set``/``observe`` straight to its
    single child.
    """

    def __init__(self, name: str, kind: str, help: str = "",
                 label_names: Sequence[str] = (), buckets: Sequence[float] | None = None):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets if self._buckets is not None
                             else DEFAULT_LATENCY_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labels: str):
        if set(labels) != set(self.label_names):
            raise ValueError(f"metric {self.name!r} takes labels "
                             f"{sorted(self.label_names)}, got {sorted(labels)}")
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Unlabeled convenience: family *is* the metric.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def series(self) -> list[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        """(labels dict, child) pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [(dict(zip(self.label_names, key)), child) for key, child in items]

    def snapshot(self) -> dict:
        series = []
        for labels, child in self.series():
            entry: dict = {"labels": labels}
            if self.kind == "histogram":
                counts = child.bucket_counts()
                cumulative, rendered = 0, []
                for bound, count in zip(child.bounds, counts):
                    cumulative += count
                    rendered.append([bound, cumulative])
                rendered.append(["+Inf", cumulative + counts[-1]])
                entry.update({"buckets": rendered, "sum": child.sum,
                              "count": child.count})
            else:
                entry["value"] = child.value
            series.append(entry)
        out = {"type": self.kind, "help": self.help,
               "labels": list(self.label_names), "series": series}
        if self.kind == "histogram":
            out["bounds"] = list(self._buckets if self._buckets is not None
                                 else DEFAULT_LATENCY_BUCKETS)
        return out


class MetricsRegistry:
    """Process-local registry of metric families.

    Registration is idempotent: asking for an existing name returns the
    existing family, provided kind and label names agree (a mismatch is
    a programming error and raises).  One registry is shared by every
    shard of a runtime; the ``shard`` label keeps their series apart, so
    a cross-shard export needs no merge step.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(self, name: str, kind: str, help: str,
                labels: Iterable[str], buckets=None) -> MetricFamily:
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help=help,
                                      label_names=label_names, buckets=buckets)
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} with labels "
                f"{family.label_names}; cannot re-register as {kind}/{label_names}")
        return family

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", labels: Iterable[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets=buckets)

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> dict:
        """Deterministic ``{family name: family snapshot}`` mapping."""
        return {family.name: family.snapshot() for family in self.families()}


def merged_histogram(snapshots: Iterable[Mapping]) -> dict:
    """Merge snapshot-form histogram series (same bounds) into one.

    Operates on the serialised form (cumulative buckets) so exporters
    can aggregate across label sets — e.g. one all-shards latency line —
    without reaching back into live objects.
    """
    merged_buckets: list[list] | None = None
    total_sum, total_count = 0.0, 0
    for entry in snapshots:
        buckets = entry["buckets"]
        if merged_buckets is None:
            merged_buckets = [[bound, 0] for bound, _ in buckets]
        if [b for b, _ in buckets] != [b for b, _ in merged_buckets]:
            raise ValueError("histogram series have different bucket bounds")
        for slot, (_, cumulative) in zip(merged_buckets, buckets):
            slot[1] += cumulative
        total_sum += entry["sum"]
        total_count += entry["count"]
    if merged_buckets is None:
        raise ValueError("no histogram series to merge")
    return {"buckets": merged_buckets, "sum": total_sum, "count": total_count}


def merged_family(families: Sequence[Mapping], gauge_mode: str = "sum") -> dict:
    """Fold several snapshot-form families of one metric into one.

    All inputs must agree on type and label names (they come from the
    same registration call replicated across processes).  Series are
    matched by label values: counters sum, gauges sum or take the max
    per ``gauge_mode`` (``"max"`` for level-style gauges like ages and
    lags, where adding process-local readings is meaningless), and
    histograms fold through :func:`merged_histogram`.  Label sets
    present in only some inputs pass through — a worker that never
    touched a shard simply contributes nothing to that series.

    Folding a single family returns a snapshot identical to the input
    (same series order, same value types), which is what makes a
    one-worker cluster's merged export byte-for-byte its worker's own.
    """
    families = list(families)
    if not families:
        raise ValueError("no families to merge (empty worker set?)")
    if gauge_mode not in ("sum", "max"):
        raise ValueError(f"gauge_mode must be 'sum' or 'max', got {gauge_mode!r}")
    first = families[0]
    kind = first["type"]
    label_names = list(first["labels"])
    for other in families[1:]:
        if other["type"] != kind or list(other["labels"]) != label_names:
            raise ValueError(
                f"cannot merge family snapshots with mismatched shape: "
                f"{kind}/{label_names} vs {other['type']}/{list(other['labels'])}")
    grouped: dict[tuple[str, ...], list[Mapping]] = {}
    for family in families:
        for entry in family["series"]:
            key = tuple(str(entry["labels"][name]) for name in label_names)
            grouped.setdefault(key, []).append(entry)
    series: list[dict] = []
    for key in sorted(grouped):
        entries = grouped[key]
        merged: dict = {"labels": dict(zip(label_names, key))}
        if kind == "histogram":
            merged.update(merged_histogram(entries))
        else:
            values = [entry["value"] for entry in entries]
            if kind == "gauge" and gauge_mode == "max":
                merged["value"] = max(values)
            elif len(values) == 1:
                merged["value"] = values[0]   # keep the exact input value
            else:
                merged["value"] = sum(values)
        series.append(merged)
    out: dict = {"type": kind, "help": first.get("help", ""),
                 "labels": label_names, "series": series}
    if kind == "histogram":
        out["bounds"] = list(first["bounds"])
    return out
