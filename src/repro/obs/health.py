"""Health probes: measured failure modes as first-class signals.

Each probe turns a failure mode this repo has already *measured* into a
number with warn/critical thresholds, so an operator watches gauges
instead of rediscovering the postmortems:

* ``stuck_refresh`` — consecutive stuck maintenance rounds (max across
  tenants): refresh/reprovision attempts that failed outright, or
  telemetry-triggered refreshes that ran yet failed to clear their
  trigger.  Either way the policy keeps asking and the reservoir keeps
  failing to produce a refit that helps — the arming signal the
  quarantine recovery path consumes (``FleetController.stuck_streaks``).
* ``reservoir_starvation`` — observations since the last *inside*
  decision, fleet-wide.  ``BENCH_fleet_drift.json``'s worst-case arm
  showed that above ~45 % ambient-AP replacement every decision goes
  outside, the inlier reservoir stops filling, and nothing
  reservoir-fed can recover; this probe fires while AUC still looks
  merely bad, not yet flat.
* ``scheduler_staleness`` — seconds since the maintenance worker last
  pumped each shard (max across shards).  A wedged or fallen-behind
  scheduler means refresh storms queue invisibly; in serial mode the
  probe reports ok (the caller *is* the scheduler).
* ``decision_bus_depth`` — pending decisions on the busiest shard's
  bus.  Nothing bounds the bus if maintenance falls behind; depth is
  the backpressure signal a router should shed on.
* ``quarantine_saturation`` — fill fraction of the fullest resident
  quarantine buffer (fleets with ``quarantine_size > 0`` only).  A
  buffer pinned at 1.0 keeps rotating evidence it never gets to use:
  the recovery proposal is waiting on an operator, or the arming
  thresholds never fired — either way, look before the evidence ages.
* ``replication_lag`` — seconds between a primary's committed
  checkpoint write and its apply on the warm standby (cluster routers
  only: the target exposes ``replication_lag()``).  A growing lag means
  a failover would lose recent write-backs; the thresholds (5 s warn /
  30 s critical by default) are the alert the README's failover
  runbook wires up.

:class:`HealthMonitor` evaluates every probe its target supports — the
four shard probes need ``shards``/``telemetry_totals()`` (a
:class:`ServingRuntime`); the replication probe needs
``replication_lag()`` (a cluster :class:`Router`) — and mirrors each
result into two gauges (``repro_health_value`` / ``repro_health_status``;
status 0=ok, 1=warn, 2=critical) so the same thresholds drive the
Prometheus alert and the JSON snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DEFAULT_STARVATION_WINDOW", "HealthMonitor", "ProbeResult",
           "STATUS_LEVELS", "grade"]

STATUS_LEVELS = {"ok": 0, "warn": 1, "critical": 2}

# Warn threshold (in observations since the last inside decision) for
# the reservoir-starvation probe; critical is twice it.  Shared with
# RecoveryPolicy.starvation_window so the controller arms recovery with
# the same arithmetic that turns the probe yellow.
DEFAULT_STARVATION_WINDOW = 200


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one probe evaluation."""

    probe: str
    value: float
    status: str              # "ok" | "warn" | "critical"
    warn_at: float
    critical_at: float
    detail: str = ""

    @property
    def level(self) -> int:
        return STATUS_LEVELS[self.status]

    def as_dict(self) -> dict:
        return {"probe": self.probe, "value": self.value, "status": self.status,
                "warn_at": self.warn_at, "critical_at": self.critical_at,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeResult":
        """Inverse of :meth:`as_dict` — how probe results shipped across
        the cluster protocol come back to life on the router."""
        return cls(probe=data["probe"], value=float(data["value"]),
                   status=data["status"], warn_at=float(data["warn_at"]),
                   critical_at=float(data["critical_at"]),
                   detail=data.get("detail", ""))


def grade(value: float, warn_at: float, critical_at: float) -> str:
    """Threshold grading shared by every probe — and by the controller's
    recovery arming, so probe status and control-plane action can never
    disagree about what counts as starving or stuck."""
    if value >= critical_at:
        return "critical"
    if value >= warn_at:
        return "warn"
    return "ok"


_grade = grade


class HealthMonitor:
    """Evaluates the four serving probes against a runtime.

    Parameters are (warn, critical) thresholds per probe;
    ``starvation_window`` is the warn threshold in observations (the
    critical threshold is twice it).  ``metrics`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry` to mirror results into.
    """

    def __init__(self, metrics=None,
                 stuck_refresh: tuple[int, int] = (2, 4),
                 starvation_window: int = DEFAULT_STARVATION_WINDOW,
                 scheduler_staleness: tuple[float, float] = (5.0, 30.0),
                 bus_depth: tuple[int, int] = (1_000, 10_000),
                 replication_lag: tuple[float, float] = (5.0, 30.0),
                 quarantine_saturation: tuple[float, float] = (0.8, 1.0)):
        self.thresholds = {
            "stuck_refresh": (float(stuck_refresh[0]), float(stuck_refresh[1])),
            "reservoir_starvation": (float(starvation_window),
                                     float(2 * starvation_window)),
            "scheduler_staleness": (float(scheduler_staleness[0]),
                                    float(scheduler_staleness[1])),
            "decision_bus_depth": (float(bus_depth[0]), float(bus_depth[1])),
            "replication_lag": (float(replication_lag[0]),
                                float(replication_lag[1])),
            "quarantine_saturation": (float(quarantine_saturation[0]),
                                      float(quarantine_saturation[1])),
        }
        self._metrics = metrics
        if metrics is not None:
            self._value_gauge = metrics.gauge(
                "repro_health_value",
                help="Raw value of each health probe", labels=("probe",))
            self._status_gauge = metrics.gauge(
                "repro_health_status",
                help="Probe status: 0=ok 1=warn 2=critical", labels=("probe",))
        # Starvation bookkeeping across checks: cumulative inside
        # decisions seen, and the observation count when they last grew.
        self._inside_seen = 0
        self._obs_at_last_inside = 0

    # ------------------------------------------------------------------
    # Probe evaluation
    # ------------------------------------------------------------------
    def check(self, runtime) -> dict[str, ProbeResult]:
        """Evaluate every supported probe; returns ``{probe name: result}``.

        ``runtime`` is duck-typed: the four shard probes run when it has
        ``shards`` (controllers, pending queues, optional scheduler,
        ``telemetry_totals()`` — a :class:`ServingRuntime`); the
        replication probe runs when it has ``replication_lag()`` (a
        cluster router with a warm standby).
        """
        results: dict[str, ProbeResult] = {}
        if hasattr(runtime, "shards"):
            results.update({
                "stuck_refresh": self._check_stuck_refresh(runtime),
                "reservoir_starvation": self._check_starvation(runtime),
                "scheduler_staleness": self._check_staleness(runtime),
                "decision_bus_depth": self._check_bus_depth(runtime),
            })
            # Like the replication probe, capability-gated: only fleets
            # that run a quarantine report its saturation.
            if any(getattr(getattr(shard, "fleet", None), "quarantine_size", 0)
                   for shard in runtime.shards):
                results["quarantine_saturation"] = self._check_quarantine(runtime)
        if hasattr(runtime, "replication_lag"):
            results["replication_lag"] = self._check_replication(runtime)
        if self._metrics is not None:
            for name, result in results.items():
                self._value_gauge.labels(probe=name).set(result.value)
                self._status_gauge.labels(probe=name).set(result.level)
        return results

    def _result(self, probe: str, value: float, detail: str = "") -> ProbeResult:
        warn_at, critical_at = self.thresholds[probe]
        return ProbeResult(probe=probe, value=float(value),
                           status=_grade(value, warn_at, critical_at),
                           warn_at=warn_at, critical_at=critical_at,
                           detail=detail)

    def _check_stuck_refresh(self, runtime) -> ProbeResult:
        worst, who = 0, ""
        for shard in runtime.shards:
            controller = shard.controller
            # stuck_streaks() folds in telemetry-triggered refreshes that
            # ran but failed to clear their trigger — the starvation
            # pattern where refreshes succeed mechanically on the stale
            # anchor yet fix nothing.  Older controller stand-ins expose
            # only the failed-refresh half.
            getter = getattr(controller, "stuck_streaks", None) \
                or controller.failed_refresh_streaks
            for tenant_id, streak in getter().items():
                if streak > worst:
                    worst, who = streak, tenant_id
        detail = (f"tenant {who!r} has {worst} consecutive stuck maintenance "
                  "rounds (failed, or triggered without clearing the trigger)"
                  if worst else "")
        return self._result("stuck_refresh", worst, detail)

    def _check_starvation(self, runtime) -> ProbeResult:
        totals = runtime.telemetry_totals()
        if totals.inside > self._inside_seen:
            self._inside_seen = totals.inside
            self._obs_at_last_inside = totals.observations
        value = totals.observations - self._obs_at_last_inside
        detail = (f"{value} observations since the last inside decision"
                  if value else "")
        return self._result("reservoir_starvation", value, detail)

    def _check_staleness(self, runtime) -> ProbeResult:
        scheduler = getattr(runtime, "scheduler", None)
        if scheduler is None:
            return self._result("scheduler_staleness", 0.0,
                                "serial mode: caller pumps synchronously")
        ages = scheduler.last_pump_ages()
        if not ages:
            if scheduler.running:
                # Started but yet to complete a first pump: age since start.
                value = scheduler.stats()["uptime_seconds"]
                return self._result("scheduler_staleness", value,
                                    "no pump completed yet")
            return self._result("scheduler_staleness", 0.0, "scheduler not started")
        worst_shard = max(ages, key=ages.get)
        return self._result("scheduler_staleness", ages[worst_shard],
                            f"shard {worst_shard} last pumped "
                            f"{ages[worst_shard]:.2f}s ago")

    def _check_bus_depth(self, runtime) -> ProbeResult:
        depths = {shard.index: shard.pending_decisions for shard in runtime.shards}
        worst_shard = max(depths, key=depths.get)
        return self._result("decision_bus_depth", depths[worst_shard],
                            f"shard {worst_shard} has {depths[worst_shard]} "
                            "pending decisions")

    def _check_quarantine(self, runtime) -> ProbeResult:
        worst, who = 0.0, ""
        for shard in runtime.shards:
            fleet = getattr(shard, "fleet", None)
            if fleet is None or not getattr(fleet, "quarantine_size", 0):
                continue
            for tenant_id, depth in fleet.quarantine_depths().items():
                saturation = depth / fleet.quarantine_size
                if saturation > worst:
                    worst, who = saturation, tenant_id
        detail = (f"tenant {who!r} quarantine {worst:.0%} full; a full buffer "
                  "only rotates evidence — approve or deny its recovery"
                  if worst else "")
        return self._result("quarantine_saturation", worst, detail)

    def _check_replication(self, runtime) -> ProbeResult:
        lag = float(runtime.replication_lag())
        detail = f"newest standby apply ran {lag:.2f}s after its commit" \
            if lag else ""
        return self._result("replication_lag", lag, detail)
