"""Lightweight span tracing for the serving paths.

``with tracer.span("observe", tenant=...)`` records one timed span;
spans opened while another is active on the same thread nest under it,
so an observe that triggers a write-back, or a refresh whose rebuild
and commit phases are timed separately, yields one tree with the
breakdown attached.  The cost stays low enough to leave on in
production (two clock reads and a few attribute writes per span).

Cross-process propagation is opt-in and minimal: a caller that wants a
span to be joinable from another process asks :meth:`Tracer.inject` for
its ``{"trace_id", "span_id"}`` context and ships that dict however it
likes (the cluster router puts it in the request frame header); the
remote side opens its root with ``tracer.span(name, context=ctx)``,
which stamps ``trace_id``/``parent_id`` onto the span so the two sides
can be stitched back into one tree after the fact.  Ids are assigned
lazily — spans that never cross a process boundary pay nothing.

Completed *root* spans update a per-name aggregate (count + seconds);
roots slower than ``slow_threshold`` seconds additionally enter a
bounded ring of recent slow traces, serialised as plain dicts — the
first thing to read when a p99 regression appears in the histograms,
because it answers *which phase* was slow, not just that something was.

Thread model: the active-span stack is thread-local (concurrent
observers never see each other's spans); the ring and aggregates are
shared under one lock taken only at root completion, never per-span.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager, nullcontext
from typing import Mapping

__all__ = ["Span", "Tracer", "maybe_span"]

# Shared no-op context for un-instrumented call sites: nullcontext is
# stateless, so one instance serves every thread and nesting depth.
_NULL_SPAN = nullcontext(None)


def maybe_span(tracer: "Tracer | None", name: str,
               context: Mapping | None = None, **attrs):
    """``tracer.span(...)`` when tracing is on, a shared no-op otherwise."""
    return _NULL_SPAN if tracer is None else tracer.span(name, context=context, **attrs)


class Span:
    """One timed operation; children are spans opened while it ran."""

    __slots__ = ("name", "attrs", "started_at", "duration", "children",
                 "trace_id", "span_id", "parent_id")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.started_at = time.perf_counter()
        self.duration: float | None = None
        self.children: list["Span"] = []
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "seconds": self.duration}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = {key: str(value) for key, value in sorted(self.attrs.items())}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class Tracer:
    """Span recorder with per-name aggregates and a slow-trace ring.

    Parameters
    ----------
    slow_threshold:
        Root spans at least this many seconds long enter the ring.
    ring_size:
        Bound on retained slow traces (oldest evicted first).
    trace_prefix:
        Prepended to generated span ids so ids minted by different
        processes (router vs worker N) never collide after stitching.
    """

    def __init__(self, slow_threshold: float = 0.1, ring_size: int = 64,
                 trace_prefix: str = ""):
        if slow_threshold < 0:
            raise ValueError(f"slow_threshold must be >= 0, got {slow_threshold}")
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.slow_threshold = slow_threshold
        self.trace_prefix = trace_prefix
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ring: "deque[dict]" = deque(maxlen=ring_size)
        self._aggregate: dict[str, list[float]] = {}   # name -> [count, seconds]
        # itertools.count.__next__ is atomic under the GIL, so id
        # generation needs no lock even with concurrent injectors.
        self._ids = itertools.count(1)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, context: Mapping | None = None, **attrs):
        stack = self._stack()
        span = Span(name, attrs)
        if context is not None:
            trace_id = context.get("trace_id")
            parent_id = context.get("span_id")
            if trace_id is not None:
                span.trace_id = str(trace_id)
            if parent_id is not None:
                span.parent_id = str(parent_id)
        stack.append(span)
        try:
            yield span
        except BaseException as error:
            span.attrs = dict(span.attrs, error=type(error).__name__)
            raise
        finally:
            span.duration = time.perf_counter() - span.started_at
            stack.pop()
            if stack:
                stack[-1].children.append(span)
            else:
                self._finish_root(span)

    def _finish_root(self, span: Span) -> None:
        with self._lock:
            entry = self._aggregate.setdefault(span.name, [0, 0.0])
            entry[0] += 1
            entry[1] += span.duration
            if span.duration >= self.slow_threshold:
                trace = span.to_dict()
                trace["recorded_at"] = time.time()
                self._ring.append(trace)

    def inject(self, span: Span) -> dict[str, str]:
        """Mint ids for ``span`` and return its propagation context.

        The returned ``{"trace_id", "span_id"}`` dict is what a remote
        process should pass as ``context=`` when opening the span that
        logically continues this one.  A span without a trace id starts
        a new trace rooted at itself; repeated injection of the same
        span is idempotent.
        """
        if span.span_id is None:
            suffix = str(next(self._ids))
            span.span_id = (f"{self.trace_prefix}-{suffix}"
                            if self.trace_prefix else suffix)
        if span.trace_id is None:
            span.trace_id = span.span_id
        return {"trace_id": span.trace_id, "span_id": span.span_id}

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def slow_traces(self) -> list[dict]:
        """Recent slow root traces, oldest first."""
        with self._lock:
            return list(self._ring)

    def snapshot(self) -> dict:
        """Aggregates + slow ring, JSON-ready and deterministic."""
        with self._lock:
            spans = {name: {"count": entry[0], "seconds": entry[1]}
                     for name, entry in sorted(self._aggregate.items())}
            ring = list(self._ring)
        return {"slow_threshold": self.slow_threshold,
                "spans": spans, "slow_traces": ring}
