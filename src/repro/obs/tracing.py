"""Lightweight span tracing for the serving paths.

``with tracer.span("observe", tenant=...)`` records one timed span;
spans opened while another is active on the same thread nest under it,
so an observe that triggers a write-back, or a refresh whose rebuild
and commit phases are timed separately, yields one tree with the
breakdown attached.  No ids, no propagation, no export protocol — the
point is post-hoc inspection inside one process, at a cost low enough
to leave on in production (two clock reads and a few attribute writes
per span).

Completed *root* spans update a per-name aggregate (count + seconds);
roots slower than ``slow_threshold`` seconds additionally enter a
bounded ring of recent slow traces, serialised as plain dicts — the
first thing to read when a p99 regression appears in the histograms,
because it answers *which phase* was slow, not just that something was.

Thread model: the active-span stack is thread-local (concurrent
observers never see each other's spans); the ring and aggregates are
shared under one lock taken only at root completion, never per-span.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager, nullcontext

__all__ = ["Span", "Tracer", "maybe_span"]

# Shared no-op context for un-instrumented call sites: nullcontext is
# stateless, so one instance serves every thread and nesting depth.
_NULL_SPAN = nullcontext(None)


def maybe_span(tracer: "Tracer | None", name: str, **attrs):
    """``tracer.span(...)`` when tracing is on, a shared no-op otherwise."""
    return _NULL_SPAN if tracer is None else tracer.span(name, **attrs)


class Span:
    """One timed operation; children are spans opened while it ran."""

    __slots__ = ("name", "attrs", "started_at", "duration", "children")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.started_at = time.perf_counter()
        self.duration: float | None = None
        self.children: list["Span"] = []

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "seconds": self.duration}
        if self.attrs:
            out["attrs"] = {key: str(value) for key, value in sorted(self.attrs.items())}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class Tracer:
    """Span recorder with per-name aggregates and a slow-trace ring.

    Parameters
    ----------
    slow_threshold:
        Root spans at least this many seconds long enter the ring.
    ring_size:
        Bound on retained slow traces (oldest evicted first).
    """

    def __init__(self, slow_threshold: float = 0.1, ring_size: int = 64):
        if slow_threshold < 0:
            raise ValueError(f"slow_threshold must be >= 0, got {slow_threshold}")
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.slow_threshold = slow_threshold
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ring: "deque[dict]" = deque(maxlen=ring_size)
        self._aggregate: dict[str, list[float]] = {}   # name -> [count, seconds]

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs):
        stack = self._stack()
        span = Span(name, attrs)
        stack.append(span)
        try:
            yield span
        except BaseException as error:
            span.attrs = dict(span.attrs, error=type(error).__name__)
            raise
        finally:
            span.duration = time.perf_counter() - span.started_at
            stack.pop()
            if stack:
                stack[-1].children.append(span)
            else:
                self._finish_root(span)

    def _finish_root(self, span: Span) -> None:
        with self._lock:
            entry = self._aggregate.setdefault(span.name, [0, 0.0])
            entry[0] += 1
            entry[1] += span.duration
            if span.duration >= self.slow_threshold:
                trace = span.to_dict()
                trace["recorded_at"] = time.time()
                self._ring.append(trace)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def slow_traces(self) -> list[dict]:
        """Recent slow root traces, oldest first."""
        with self._lock:
            return list(self._ring)

    def snapshot(self) -> dict:
        """Aggregates + slow ring, JSON-ready and deterministic."""
        with self._lock:
            spans = {name: {"count": entry[0], "seconds": entry[1]}
                     for name, entry in sorted(self._aggregate.items())}
            ring = list(self._ring)
        return {"slow_threshold": self.slow_threshold,
                "spans": spans, "slow_traces": ring}
