"""Observability for the serving runtime: metrics, tracing, health.

The data plane got sharded (PR 5) before it got observable: the only
window into a running fleet was :class:`~repro.serve.telemetry.FleetTelemetry`'s
plain counters.  This package adds the missing layer, designed to be
near-free on the observe path and zero-dependency:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket latency histograms (streaming p50/p90/p99,
  no samples stored) with labeled families (``shard``, ``tenant_class``,
  ``op``);
* :mod:`repro.obs.tracing` — :class:`Tracer` span API recording nested
  timings on the observe / write-back / refresh / compaction paths,
  with a bounded ring of recent slow traces;
* :mod:`repro.obs.export` — Prometheus text exposition + canonical
  JSON snapshots + the opt-in :class:`MetricsDumper` JSONL recorder;
* :mod:`repro.obs.health` — :class:`HealthMonitor` probes turning
  measured failure modes (stuck refresh streaks, reservoir starvation,
  scheduler staleness, decision-bus depth) into thresholded gauges;
* :mod:`repro.obs.cluster` — the cluster fold: merge per-worker
  snapshots (counters sum, gauges sum/max, histograms fold), stitch
  router→worker span trees, and roll worker health + liveness +
  replication lag into one graded :class:`ClusterHealthMonitor` report.

:class:`~repro.serve.runtime.ServingRuntime` wires the per-process
layers together (``observability=True`` by default) and the cluster
:class:`~repro.serve.cluster.Router` aggregates them;
``runtime.metrics()`` / ``runtime.export_prometheus()`` and their
router counterparts are the read surfaces.
"""

from repro.obs.cluster import (
    ClusterHealthMonitor,
    cluster_families,
    gauge_merge_mode,
    merge_worker_snapshots,
    stitch_traces,
)
from repro.obs.export import (
    MetricsDumper,
    diff_snapshots,
    histogram_percentiles,
    render_prometheus,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.obs.health import STATUS_LEVELS, HealthMonitor, ProbeResult
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    bucket_quantile,
    merged_family,
    merged_histogram,
)
from repro.obs.tracing import Span, Tracer, maybe_span

__all__ = [
    "ClusterHealthMonitor",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "MetricFamily",
    "MetricsDumper",
    "MetricsRegistry",
    "ProbeResult",
    "STATUS_LEVELS",
    "Span",
    "Tracer",
    "bucket_quantile",
    "cluster_families",
    "diff_snapshots",
    "gauge_merge_mode",
    "histogram_percentiles",
    "maybe_span",
    "merge_worker_snapshots",
    "merged_family",
    "merged_histogram",
    "render_prometheus",
    "snapshot_from_json",
    "snapshot_to_json",
]
