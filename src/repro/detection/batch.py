"""Batch-scoring contract for detectors on the vectorized data plane.

A detector opts into the fast path by exposing::

    def supports_batch_score(self) -> bool: ...
    def score_batch(self, embeddings: np.ndarray) -> BatchScores: ...

``score_batch`` receives a C-contiguous ``(B, d)`` float64 matrix of
embedding rows and must return, per row, exactly what one scalar
``observe`` would have derived from the same row against the detector's
*current* state:

* ``scores[i]``   — ``float(decision_scores(row_i[None, :])[0])``
* ``outliers[i]`` — ``bool(is_outlier(row_i[None, :])[0])``
* ``confident[i]``— ``bool(is_confident_inlier(row_i[None, :])[0])``

bit for bit.  Detectors whose batch math cannot honour that (pairwise
or ensemble scorers whose dense kernels depend on the batch size, e.g.
LOF / iForest / feature bagging) must simply not define the hooks; the
serving layer then falls back to the scalar loop via the registry's
``supports_batch_score`` flag.

The caller owns update semantics: ``score_batch`` must not mutate the
detector, and scores it returned become stale the moment the caller
applies an ``update`` — the batch plane re-scores the remainder of the
batch after every flush for exactly that reason.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = ["BatchScores"]


class BatchScores(NamedTuple):
    """Per-row detector verdicts for one batch of embedding rows."""

    scores: np.ndarray     # (B,) float64 decision scores
    outliers: np.ndarray   # (B,) bool — score beyond the OUT threshold
    confident: np.ndarray  # (B,) bool — confident-inlier (absorbable)
