"""The paper's enhanced histogram-based one-class detector ("OD", Sec. III-C).

Pipeline per Sec. III-C / IV:

1. **HBOS base** — one histogram per embedding dimension over the
   training (normal) embeddings, ``m`` equal-width bins between the
   per-dimension min and max; raw score ``H(h) = Σ_j log(1 / hist_j(h_j))``
   (Eq. 10), where out-of-range or empty bins contribute a small pseudo
   count so the score stays finite but large.
2. **Normalisation** — training raw scores are min–max normalised to
   [0, 1]; the same affine map (clipped) is applied to new samples.
3. **Enhancement** — the Boltzmann/softmax rescaling of Eq. 11 with
   temperature ``T``: ``S_T(h) = σ((2·H̄(h) − 1) / T)``; OUT iff
   ``S_T > τ_u`` (Eq. 12), and a *highly confident* IN sample
   (``S_T < τ_l``) is absorbed into the histograms (Sec. IV-C), singly
   or in batches.

Setting ``enhanced=False`` reproduces the plain HBOS detector with the
contamination-based threshold ``τ = H̄(h_[i*])`` — the "without our
enhancement" arm of Fig. 7(b).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.detection.batch import BatchScores
from repro.detection.threshold import MinMaxNormalizer, contamination_threshold
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = ["HistogramConfig", "HistogramDetector"]


@dataclass(frozen=True)
class HistogramConfig:
    """Hyper-parameters.

    ``temperature`` and ``num_bins`` follow the paper (Sec. V).  The
    thresholds τ_u/τ_l are deployment constants the authors tuned on
    their measurement campaign (0.005 / 0.001, which with T = 0.06 put
    the decision cut at normalised score H̄ ≈ 0.34).  On this
    reproduction's simulated substrate the normalised training-score
    bulk sits higher, so the defaults below place the cut at H̄ = 0.60
    (τ_u = σ((2·0.6−1)/T) ≈ 0.965) and the confident-inlier cut at
    H̄ = 0.50 (τ_l = 0.5).  The paper's values remain one constructor
    argument away.
    """

    num_bins: int = 10
    temperature: float = 0.06
    tau_upper: float = 0.9655
    tau_lower: float = 0.5
    enhanced: bool = True
    contamination: float = 0.05
    pseudo_count: float = 0.1
    smoothing_passes: int = 1

    def __post_init__(self):
        check_positive_int(self.num_bins, "num_bins")
        if self.smoothing_passes < 0:
            raise ValueError("smoothing_passes must be >= 0")
        check_positive(self.temperature, "temperature")
        check_probability(self.tau_upper, "tau_upper")
        check_probability(self.tau_lower, "tau_lower")
        if self.tau_lower > self.tau_upper:
            raise ValueError(f"tau_lower ({self.tau_lower}) must not exceed tau_upper ({self.tau_upper})")
        check_probability(self.contamination, "contamination")
        check_positive(self.pseudo_count, "pseudo_count")

    def to_dict(self) -> dict:
        """JSON-safe dict form; see :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramConfig":
        return cls(**data)


class HistogramDetector:
    """Enhanced histogram one-class classifier over embeddings."""

    def __init__(self, config: HistogramConfig = HistogramConfig()):
        self.config = config
        self._data: np.ndarray | None = None      # all absorbed normal embeddings
        self._edges: np.ndarray | None = None     # (d, m+1) bin edges
        self._counts: np.ndarray | None = None    # (d, m) frequency counts
        self._log_density: np.ndarray | None = None  # (d, m) decision surface
        self._oor_score: float | None = None
        self._normalizer: MinMaxNormalizer | None = None
        self._plain_threshold: float | None = None
        self.num_updates = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, embeddings: np.ndarray) -> "HistogramDetector":
        """Build histograms + score normalisation from normal embeddings."""
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        if embeddings.ndim != 2 or len(embeddings) == 0:
            raise ValueError("fit expects a non-empty (n, d) embedding matrix")
        if not np.isfinite(embeddings).all():
            raise ValueError("embeddings contain non-finite values")
        self._data = embeddings.copy()
        self._rebuild()
        return self

    def _rebuild(self) -> None:
        """Recompute histograms, normalisation and thresholds from stored data."""
        data = self._data
        n, d = data.shape
        m = self.config.num_bins
        lows = data.min(axis=0)
        highs = data.max(axis=0)
        # Degenerate dimensions (constant value) get a symmetric unit span
        # so every training point lands mid-histogram.
        spans = highs - lows
        flat = spans <= 0
        lows = np.where(flat, lows - 0.5, lows)
        highs = np.where(flat, highs + 0.5, highs)
        self._edges = np.linspace(lows, highs, m + 1, axis=1)  # (d, m+1)
        counts = np.empty((d, m), dtype=np.float64)
        for j in range(d):
            counts[j], _ = np.histogram(data[:, j], bins=self._edges[j])
        # Binomial smoothing across adjacent bins: with n ~ hundreds of
        # samples spread over m bins per dimension, raw counts are noisy
        # and a normal sample that lands one bin over from the training
        # mass would otherwise receive an extreme log(1/count) penalty.
        for _ in range(self.config.smoothing_passes):
            padded = np.pad(counts, ((0, 0), (1, 1)), mode="edge")
            counts = 0.25 * padded[:, :-2] + 0.5 * padded[:, 1:-1] + 0.25 * padded[:, 2:]
        self._counts = counts
        # Precomputed decision surface: scoring a sample gathers from
        # this (d, m) log-density table instead of re-running the
        # max/reciprocal/log chain per sample.  Each table cell is the
        # scalar chain applied to the same count the per-sample path
        # would have gathered, so gathered scores are bit-identical.
        self._log_density = np.log(1.0 / np.maximum(counts, self.config.pseudo_count))
        self._oor_score = float(np.log(1.0 / np.maximum(0.0, self.config.pseudo_count)))
        raw = self._raw_scores(data)
        self._normalizer = MinMaxNormalizer().fit(raw)
        normalized = self._normalizer.transform(raw)
        self._plain_threshold = contamination_threshold(normalized, self.config.contamination)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _bin_counts(self, embeddings: np.ndarray) -> np.ndarray:
        """Per-sample per-dimension frequency counts hist_j(h_j)."""
        d, m = self._counts.shape
        out = np.empty(embeddings.shape, dtype=np.float64)
        for j in range(d):
            edges = self._edges[j]
            positions = np.searchsorted(edges, embeddings[:, j], side="right") - 1
            in_range = (embeddings[:, j] >= edges[0]) & (embeddings[:, j] <= edges[-1])
            positions = np.clip(positions, 0, m - 1)
            counts = self._counts[j][positions]
            counts[~in_range] = 0.0
            out[:, j] = counts
        return out

    def _raw_scores(self, embeddings: np.ndarray) -> np.ndarray:
        """Eq. 10, gathered from the precomputed log-density surface.

        The per-cell pseudo-count guard is already baked into
        ``_log_density``; out-of-range samples take ``_oor_score``
        (the empty-bin penalty) exactly as a zero count would have.
        """
        d, m = self._counts.shape
        out = np.empty(embeddings.shape, dtype=np.float64)
        for j in range(d):
            edges = self._edges[j]
            col = embeddings[:, j]
            positions = np.searchsorted(edges, col, side="right") - 1
            in_range = (col >= edges[0]) & (col <= edges[-1])
            values = self._log_density[j][np.clip(positions, 0, m - 1)]
            values[~in_range] = self._oor_score
            out[:, j] = values
        return out.sum(axis=1)

    def normalized_scores(self, embeddings: np.ndarray) -> np.ndarray:
        """Min–max normalised H̄ scores in [0, 1] (higher = more outlying)."""
        self._require_fitted()
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        return self._normalizer.transform(self._raw_scores(embeddings))

    def enhanced_scores(self, embeddings: np.ndarray) -> np.ndarray:
        """Eq. 11: S_T(h) = σ((2·H̄ − 1) / T)."""
        normalized = self.normalized_scores(embeddings)
        logits = (2.0 * normalized - 1.0) / self.config.temperature
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))

    def decision_scores(self, embeddings: np.ndarray) -> np.ndarray:
        """Score used for thresholding (S_T if enhanced, else H̄)."""
        if self.config.enhanced:
            return self.enhanced_scores(embeddings)
        return self.normalized_scores(embeddings)

    @property
    def threshold(self) -> float:
        """Active OUT threshold (τ_u if enhanced, contamination τ otherwise)."""
        self._require_fitted()
        return self.config.tau_upper if self.config.enhanced else self._plain_threshold

    def is_outlier(self, embeddings: np.ndarray) -> np.ndarray:
        """Boolean OUT decision per row (Eq. 12)."""
        return self.decision_scores(embeddings) > self.threshold

    def is_confident_inlier(self, embeddings: np.ndarray) -> np.ndarray:
        """Highly confident IN per Sec. IV-C: S_T < τ_l (enhanced mode only)."""
        self._require_fitted()
        if not self.config.enhanced:
            return np.zeros(len(np.atleast_2d(embeddings)), dtype=bool)
        return self.enhanced_scores(embeddings) < self.config.tau_lower

    # ------------------------------------------------------------------
    # Batch scoring (vectorized data plane)
    # ------------------------------------------------------------------
    def supports_batch_score(self) -> bool:
        """Histogram scoring is row-separable, so batching is bit-safe."""
        return True

    def score_batch(self, embeddings: np.ndarray) -> BatchScores:
        """Score a whole ``(B, d)`` batch in one pass — see
        :mod:`repro.detection.batch` for the bit-identity contract.

        One ``decision_scores`` evaluation yields all three verdicts:
        the scalar path's ``is_outlier`` / ``is_confident_inlier`` each
        re-derive the same deterministic score before comparing, so
        comparing the shared scores against the same cuts reproduces
        them exactly.
        """
        self._require_fitted()
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        scores = self.decision_scores(embeddings)
        outliers = scores > self.threshold
        if self.config.enhanced:
            confident = scores < self.config.tau_lower
        else:
            confident = np.zeros(len(scores), dtype=bool)
        return BatchScores(scores=scores, outliers=outliers, confident=confident)

    # ------------------------------------------------------------------
    # Online update (Sec. IV-C)
    # ------------------------------------------------------------------
    def update(self, embeddings: np.ndarray) -> None:
        """Absorb confident-inlier embeddings and rebuild the histograms.

        Accepts a single vector or a batch (the batch mode of Fig. 14(d,e)).
        """
        self._require_fitted()
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        if embeddings.shape[1] != self._data.shape[1]:
            raise ValueError(f"dimension mismatch: update has {embeddings.shape[1]}, model has {self._data.shape[1]}")
        if not np.isfinite(embeddings).all():
            raise ValueError("update embeddings contain non-finite values")
        self._data = np.vstack([self._data, embeddings])
        self.num_updates += len(embeddings)
        self._rebuild()

    def refit(self, embeddings: np.ndarray) -> "HistogramDetector":
        """Re-baseline the detector on fresh embeddings (coordinated refresh).

        Unlike :meth:`update`, this *replaces* the absorbed training set
        instead of appending to it — the embedding function changed under
        us (e.g. a cache rebuild), so scores of old embeddings no longer
        live on the same scale as new ones.  ``num_updates`` restarts at
        zero: the new histograms owe nothing to the old online updates.
        """
        self.fit(embeddings)
        self.num_updates = 0
        return self

    @property
    def num_samples(self) -> int:
        self._require_fitted()
        return len(self._data)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: config + absorbed embeddings.

        Histograms, normalisation and thresholds are deterministic
        functions of the stored data, so :meth:`load_state_dict` rebuilds
        them instead of persisting derived arrays.
        """
        self._require_fitted()
        return {
            "config": self.config.to_dict(),
            "data": self._data.copy(),
            "num_updates": self.num_updates,
        }

    def load_state_dict(self, state: dict) -> "HistogramDetector":
        """Restore a detector saved by :meth:`state_dict`."""
        saved_cfg = HistogramConfig.from_dict(state["config"])
        if saved_cfg != self.config:
            raise ValueError("checkpoint config does not match this detector's config; "
                             f"saved {saved_cfg}, constructed with {self.config}")
        self.fit(np.asarray(state["data"], dtype=np.float64))
        self.num_updates = int(state["num_updates"])
        return self

    def _require_fitted(self) -> None:
        if self._data is None:
            raise RuntimeError("HistogramDetector has not been fitted; call fit first")
