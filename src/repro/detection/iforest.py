"""Isolation forest (Liu, Ting & Zhou, ICDM 2008), from scratch.

"BiSAGE + iForest" row of Table I.  Trees are grown on subsamples with
uniformly random split dimensions and split values; the anomaly score is
``2^(-E[path length] / c(ψ))`` with the usual harmonic-number
normaliser.
"""

from __future__ import annotations

import numpy as np

from repro.detection.threshold import contamination_threshold
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["IsolationForest"]

_EULER_GAMMA = 0.5772156649015329


def _average_path_length(n: int | np.ndarray) -> np.ndarray:
    """c(n): expected path length of an unsuccessful BST search."""
    n = np.asarray(n, dtype=np.float64)
    out = np.zeros_like(n)
    big = n > 2
    out[big] = 2.0 * (np.log(n[big] - 1.0) + _EULER_GAMMA) - 2.0 * (n[big] - 1.0) / n[big]
    out[n == 2] = 1.0
    return out


class _Node:
    __slots__ = ("feature", "value", "left", "right", "size")

    def __init__(self, feature=None, value=None, left=None, right=None, size=0):
        self.feature = feature
        self.value = value
        self.left = left
        self.right = right
        self.size = size


class IsolationForest:
    """Ensemble of isolation trees over embedding vectors."""

    def __init__(self, n_trees: int = 100, subsample_size: int = 256,
                 contamination: float = 0.05, seed=None):
        check_positive_int(n_trees, "n_trees")
        check_positive_int(subsample_size, "subsample_size")
        check_probability(contamination, "contamination")
        self.n_trees = n_trees
        self.subsample_size = subsample_size
        self.contamination = contamination
        self.seed = seed
        self._rng = as_rng(seed)
        self._trees: list[_Node] = []
        self._subsample_used = 0
        self.threshold_: float | None = None
        self.train_scores_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "IsolationForest":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if len(x) < 2:
            raise ValueError("isolation forest requires at least two samples")
        self._subsample_used = min(self.subsample_size, len(x))
        height_limit = int(np.ceil(np.log2(max(self._subsample_used, 2))))
        self._trees = []
        for _ in range(self.n_trees):
            sample_idx = self._rng.choice(len(x), size=self._subsample_used, replace=False)
            self._trees.append(self._grow(x[sample_idx], 0, height_limit))
        self.train_scores_ = self.decision_scores(x)
        self.threshold_ = contamination_threshold(self.train_scores_, self.contamination)
        return self

    def _grow(self, x: np.ndarray, depth: int, limit: int) -> _Node:
        n = len(x)
        if depth >= limit or n <= 1:
            return _Node(size=n)
        # Pick among features that still vary in this partition.
        spans = x.max(axis=0) - x.min(axis=0)
        varying = np.nonzero(spans > 0)[0]
        if varying.size == 0:
            return _Node(size=n)
        feature = int(self._rng.choice(varying))
        low, high = x[:, feature].min(), x[:, feature].max()
        value = float(self._rng.uniform(low, high))
        mask = x[:, feature] < value
        if mask.all() or (~mask).all():
            return _Node(size=n)
        return _Node(feature=feature, value=value,
                     left=self._grow(x[mask], depth + 1, limit),
                     right=self._grow(x[~mask], depth + 1, limit),
                     size=n)

    def _path_length(self, row: np.ndarray, node: _Node, depth: int) -> float:
        while node.feature is not None:
            node = node.left if row[node.feature] < node.value else node.right
            depth += 1
        if node.size > 1:
            return depth + float(_average_path_length(np.asarray([node.size]))[0])
        return float(depth)

    def decision_scores(self, x: np.ndarray) -> np.ndarray:
        """Anomaly scores in (0, 1); higher = easier to isolate = outlier."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        depths = np.empty((len(x), len(self._trees)))
        for t, tree in enumerate(self._trees):
            for i, row in enumerate(x):
                depths[i, t] = self._path_length(row, tree, 0)
        c = float(_average_path_length(np.asarray([self._subsample_used]))[0])
        c = max(c, 1e-12)
        return 2.0 ** (-depths.mean(axis=1) / c)

    def is_outlier(self, x: np.ndarray) -> np.ndarray:
        return self.decision_scores(x) > self.threshold_

    def refit(self, x: np.ndarray) -> "IsolationForest":
        """Re-baseline on fresh embeddings (coordinated refresh).

        The ensemble RNG is re-derived from the constructor seed so that
        two detectors with the same seed refit on the same embeddings
        grow bit-identical forests, regardless of how much randomness the
        previous fit consumed.
        """
        self._rng = as_rng(self.seed)
        return self.fit(x)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: hyper-parameters + flattened trees.

        Every tree is serialised into shared node arrays (feature -1
        marks a leaf, child index -1 marks "no child"); scoring is a
        deterministic function of the trees, so a restored forest scores
        bit-for-bit identically.  The RNG is *not* saved — it only
        matters for a future ``fit``, never for scoring.
        """
        self._require_fitted()
        feature, value, left, right, size, roots = [], [], [], [], [], []

        def add(node: _Node) -> int:
            index = len(feature)
            feature.append(-1 if node.feature is None else int(node.feature))
            value.append(0.0 if node.value is None else float(node.value))
            left.append(-1)
            right.append(-1)
            size.append(int(node.size))
            if node.feature is not None:
                left[index] = add(node.left)
                right[index] = add(node.right)
            return index

        for tree in self._trees:
            roots.append(add(tree))
        return {
            "n_trees": self.n_trees,
            "subsample_size": self.subsample_size,
            "contamination": self.contamination,
            "subsample_used": self._subsample_used,
            "threshold": float(self.threshold_),
            "train_scores": self.train_scores_.copy(),
            "node_feature": np.asarray(feature, dtype=np.int64),
            "node_value": np.asarray(value, dtype=np.float64),
            "node_left": np.asarray(left, dtype=np.int64),
            "node_right": np.asarray(right, dtype=np.int64),
            "node_size": np.asarray(size, dtype=np.int64),
            "tree_roots": np.asarray(roots, dtype=np.int64),
        }

    def load_state_dict(self, state: dict) -> "IsolationForest":
        """Restore a forest saved by :meth:`state_dict`."""
        feature = np.asarray(state["node_feature"], dtype=np.int64)
        value = np.asarray(state["node_value"], dtype=np.float64)
        left = np.asarray(state["node_left"], dtype=np.int64)
        right = np.asarray(state["node_right"], dtype=np.int64)
        size = np.asarray(state["node_size"], dtype=np.int64)
        roots = np.asarray(state["tree_roots"], dtype=np.int64)
        n = len(feature)
        for name, arr in (("node_value", value), ("node_left", left),
                          ("node_right", right), ("node_size", size)):
            if len(arr) != n:
                raise ValueError(f"iforest state {name} has {len(arr)} entries, expected {n}")
        children = np.concatenate([left, right, roots])
        if children.size and (children.min() < -1 or children.max() >= n):
            raise ValueError("iforest state references a node index outside the arrays")

        def build(index: int) -> _Node:
            node = _Node(feature=None if feature[index] < 0 else int(feature[index]),
                         value=None if feature[index] < 0 else float(value[index]),
                         size=int(size[index]))
            if node.feature is not None:
                if left[index] < 0 or right[index] < 0:
                    raise ValueError(f"iforest state node {index} splits but lacks children")
                node.left = build(int(left[index]))
                node.right = build(int(right[index]))
            return node

        trees = [build(int(root)) for root in roots]
        if not trees:
            raise ValueError("iforest state holds no trees")
        check_positive_int(int(state["n_trees"]), "n_trees")
        check_positive_int(int(state["subsample_size"]), "subsample_size")
        check_probability(float(state["contamination"]), "contamination")
        self.n_trees = int(state["n_trees"])
        self.subsample_size = int(state["subsample_size"])
        self.contamination = float(state["contamination"])
        self._subsample_used = int(state["subsample_used"])
        self._trees = trees
        self.threshold_ = float(state["threshold"])
        self.train_scores_ = np.asarray(state["train_scores"], dtype=np.float64)
        return self

    def _require_fitted(self) -> None:
        if not self._trees:
            raise RuntimeError("IsolationForest has not been fitted; call fit first")
