"""Isolation forest (Liu, Ting & Zhou, ICDM 2008), from scratch.

"BiSAGE + iForest" row of Table I.  Trees are grown on subsamples with
uniformly random split dimensions and split values; the anomaly score is
``2^(-E[path length] / c(ψ))`` with the usual harmonic-number
normaliser.
"""

from __future__ import annotations

import numpy as np

from repro.detection.threshold import contamination_threshold
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["IsolationForest"]

_EULER_GAMMA = 0.5772156649015329


def _average_path_length(n: int | np.ndarray) -> np.ndarray:
    """c(n): expected path length of an unsuccessful BST search."""
    n = np.asarray(n, dtype=np.float64)
    out = np.zeros_like(n)
    big = n > 2
    out[big] = 2.0 * (np.log(n[big] - 1.0) + _EULER_GAMMA) - 2.0 * (n[big] - 1.0) / n[big]
    out[n == 2] = 1.0
    return out


class _Node:
    __slots__ = ("feature", "value", "left", "right", "size")

    def __init__(self, feature=None, value=None, left=None, right=None, size=0):
        self.feature = feature
        self.value = value
        self.left = left
        self.right = right
        self.size = size


class IsolationForest:
    """Ensemble of isolation trees over embedding vectors."""

    def __init__(self, n_trees: int = 100, subsample_size: int = 256,
                 contamination: float = 0.05, seed=None):
        check_positive_int(n_trees, "n_trees")
        check_positive_int(subsample_size, "subsample_size")
        check_probability(contamination, "contamination")
        self.n_trees = n_trees
        self.subsample_size = subsample_size
        self.contamination = contamination
        self._rng = as_rng(seed)
        self._trees: list[_Node] = []
        self._subsample_used = 0
        self.threshold_: float | None = None
        self.train_scores_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "IsolationForest":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if len(x) < 2:
            raise ValueError("isolation forest requires at least two samples")
        self._subsample_used = min(self.subsample_size, len(x))
        height_limit = int(np.ceil(np.log2(max(self._subsample_used, 2))))
        self._trees = []
        for _ in range(self.n_trees):
            sample_idx = self._rng.choice(len(x), size=self._subsample_used, replace=False)
            self._trees.append(self._grow(x[sample_idx], 0, height_limit))
        self.train_scores_ = self.decision_scores(x)
        self.threshold_ = contamination_threshold(self.train_scores_, self.contamination)
        return self

    def _grow(self, x: np.ndarray, depth: int, limit: int) -> _Node:
        n = len(x)
        if depth >= limit or n <= 1:
            return _Node(size=n)
        # Pick among features that still vary in this partition.
        spans = x.max(axis=0) - x.min(axis=0)
        varying = np.nonzero(spans > 0)[0]
        if varying.size == 0:
            return _Node(size=n)
        feature = int(self._rng.choice(varying))
        low, high = x[:, feature].min(), x[:, feature].max()
        value = float(self._rng.uniform(low, high))
        mask = x[:, feature] < value
        if mask.all() or (~mask).all():
            return _Node(size=n)
        return _Node(feature=feature, value=value,
                     left=self._grow(x[mask], depth + 1, limit),
                     right=self._grow(x[~mask], depth + 1, limit),
                     size=n)

    def _path_length(self, row: np.ndarray, node: _Node, depth: int) -> float:
        while node.feature is not None:
            node = node.left if row[node.feature] < node.value else node.right
            depth += 1
        if node.size > 1:
            return depth + float(_average_path_length(np.asarray([node.size]))[0])
        return float(depth)

    def decision_scores(self, x: np.ndarray) -> np.ndarray:
        """Anomaly scores in (0, 1); higher = easier to isolate = outlier."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        depths = np.empty((len(x), len(self._trees)))
        for t, tree in enumerate(self._trees):
            for i, row in enumerate(x):
                depths[i, t] = self._path_length(row, tree, 0)
        c = float(_average_path_length(np.asarray([self._subsample_used]))[0])
        c = max(c, 1e-12)
        return 2.0 ** (-depths.mean(axis=1) / c)

    def is_outlier(self, x: np.ndarray) -> np.ndarray:
        return self.decision_scores(x) > self.threshold_

    def _require_fitted(self) -> None:
        if not self._trees:
            raise RuntimeError("IsolationForest has not been fitted; call fit first")
