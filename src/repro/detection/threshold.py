"""Score normalisation and contamination-based thresholding helpers."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_probability

__all__ = ["MinMaxNormalizer", "contamination_threshold"]


class MinMaxNormalizer:
    """Min–max rescaling into [0, 1], fitted on training scores.

    New scores may fall outside the training range; by default they are
    clipped into [0, 1] (a score lower than any training score is surely
    normal; higher is surely anomalous).
    """

    def __init__(self, clip: bool = True):
        self.clip = clip
        self.low: float | None = None
        self.high: float | None = None

    def fit(self, scores) -> "MinMaxNormalizer":
        scores = np.asarray(scores, dtype=np.float64)
        if scores.size == 0:
            raise ValueError("cannot fit a normalizer on zero scores")
        if not np.isfinite(scores).all():
            raise ValueError("scores contain non-finite values")
        self.low = float(scores.min())
        self.high = float(scores.max())
        return self

    def transform(self, scores) -> np.ndarray:
        if self.low is None or self.high is None:
            raise RuntimeError("normalizer has not been fitted")
        scores = np.asarray(scores, dtype=np.float64)
        span = self.high - self.low
        if span <= 0:
            # Degenerate training scores: everything maps to the midpoint.
            out = np.full_like(scores, 0.5)
        else:
            out = (scores - self.low) / span
        if self.clip:
            out = np.clip(out, 0.0, 1.0)
        return out

    def fit_transform(self, scores) -> np.ndarray:
        return self.fit(scores).transform(scores)

    def state_dict(self) -> dict:
        """Checkpointable state: the clip flag and the fitted range."""
        if self.low is None or self.high is None:
            raise RuntimeError("cannot checkpoint an unfitted normalizer")
        return {"clip": self.clip, "low": self.low, "high": self.high}

    def load_state_dict(self, state: dict) -> "MinMaxNormalizer":
        """Restore a normalizer saved by :meth:`state_dict`."""
        low = float(state["low"])
        high = float(state["high"])
        if high < low:
            raise ValueError(f"normalizer state has high ({high}) < low ({low})")
        self.clip = bool(state["clip"])
        self.low = low
        self.high = high
        return self


def contamination_threshold(scores, contamination: float) -> float:
    """The original HBOS threshold: the (n·γ)-th highest training score.

    With γ = 0 the threshold sits just above the maximum training score
    (nothing in training is flagged).
    """
    check_probability(contamination, "contamination")
    scores = np.sort(np.asarray(scores, dtype=np.float64))[::-1]
    if scores.size == 0:
        raise ValueError("cannot derive a threshold from zero scores")
    if contamination <= 0:
        return float(scores[0]) + 1e-12
    index = min(int(np.ceil(len(scores) * contamination)) - 1, len(scores) - 1)
    index = max(index, 0)
    return float(scores[index])
