"""Feature bagging for outlier detection (Lazarevic & Kumar, KDD 2005).

"BiSAGE + Feature bagging" row of Table I: an ensemble of base outlier
detectors (LOF, as in the original paper), each fitted on a random
feature subset of size between ⌈d/2⌉ and d−1; scores are combined by the
cumulative-sum rule and thresholded by contamination on training data.
"""

from __future__ import annotations

import numpy as np

from repro.detection.lof import LocalOutlierFactor
from repro.detection.threshold import contamination_threshold
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["FeatureBagging"]


class FeatureBagging:
    """Cumulative-sum feature-bagged LOF ensemble."""

    def __init__(self, n_estimators: int = 10, n_neighbors: int = 20,
                 contamination: float = 0.05, seed=None):
        check_positive_int(n_estimators, "n_estimators")
        check_positive_int(n_neighbors, "n_neighbors")
        check_probability(contamination, "contamination")
        self.n_estimators = n_estimators
        self.n_neighbors = n_neighbors
        self.contamination = contamination
        self.seed = seed
        self._rng = as_rng(seed)
        self._members: list[tuple[np.ndarray, LocalOutlierFactor]] = []
        self.threshold_: float | None = None
        self.train_scores_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "FeatureBagging":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if len(x) < 2:
            raise ValueError("feature bagging requires at least two samples")
        d = x.shape[1]
        if d < 2:
            raise ValueError("feature bagging requires at least two features")
        low = int(np.ceil(d / 2.0))
        self._members = []
        for _ in range(self.n_estimators):
            size = int(self._rng.integers(low, d)) if d > low else low
            features = self._rng.choice(d, size=size, replace=False)
            detector = LocalOutlierFactor(n_neighbors=self.n_neighbors,
                                          contamination=self.contamination)
            detector.fit(x[:, features])
            self._members.append((features, detector))
        self.train_scores_ = self.decision_scores(x)
        self.threshold_ = contamination_threshold(self.train_scores_, self.contamination)
        return self

    def decision_scores(self, x: np.ndarray) -> np.ndarray:
        """Cumulative-sum combination of member LOF scores."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        total = np.zeros(len(x))
        for features, detector in self._members:
            total += detector.decision_scores(x[:, features])
        return total

    def is_outlier(self, x: np.ndarray) -> np.ndarray:
        return self.decision_scores(x) > self.threshold_

    def refit(self, x: np.ndarray) -> "FeatureBagging":
        """Re-baseline on fresh embeddings (coordinated refresh).

        The ensemble RNG is re-derived from the constructor seed so a
        refit is a pure function of ``(seed, x)`` — two same-seed
        ensembles refit on the same embeddings draw identical feature
        subsets.
        """
        self._rng = as_rng(self.seed)
        return self.fit(x)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: hyper-parameters + per-member (features, LOF).

        The ensemble RNG is not saved — it only seeds a future ``fit``;
        scoring is deterministic in the stored members.
        """
        self._require_fitted()
        return {
            "n_estimators": self.n_estimators,
            "n_neighbors": self.n_neighbors,
            "contamination": self.contamination,
            "threshold": float(self.threshold_),
            "train_scores": self.train_scores_.copy(),
            "members": {
                str(i): {"features": np.asarray(features, dtype=np.int64),
                         "lof": detector.state_dict()}
                for i, (features, detector) in enumerate(self._members)
            },
        }

    def load_state_dict(self, state: dict) -> "FeatureBagging":
        """Restore an ensemble saved by :meth:`state_dict`."""
        saved = state["members"]
        members: list[tuple[np.ndarray, LocalOutlierFactor]] = []
        for i in range(len(saved)):
            member = saved[str(i)]
            features = np.asarray(member["features"], dtype=np.int64)
            if features.ndim != 1 or features.size == 0:
                raise ValueError(f"feature-bagging member {i} has a bad feature subset")
            members.append((features, LocalOutlierFactor().load_state_dict(member["lof"])))
        if not members:
            raise ValueError("feature-bagging state holds no members")
        check_positive_int(int(state["n_estimators"]), "n_estimators")
        check_positive_int(int(state["n_neighbors"]), "n_neighbors")
        check_probability(float(state["contamination"]), "contamination")
        self.n_estimators = int(state["n_estimators"])
        self.n_neighbors = int(state["n_neighbors"])
        self.contamination = float(state["contamination"])
        self._members = members
        self.threshold_ = float(state["threshold"])
        self.train_scores_ = np.asarray(state["train_scores"], dtype=np.float64)
        return self

    def _require_fitted(self) -> None:
        if not self._members:
            raise RuntimeError("FeatureBagging has not been fitted; call fit first")
