"""Local outlier factor (Breunig et al., SIGMOD 2000), from scratch.

Used in the "BiSAGE + LOF" comparison row of Table I and as the base
learner inside feature bagging.  Brute-force neighbour search is fine at
the embedding sizes the paper works with (hundreds to a few thousand
records, d ≤ 128).
"""

from __future__ import annotations

import numpy as np

from repro.detection.threshold import contamination_threshold
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["LocalOutlierFactor"]


class LocalOutlierFactor:
    """LOF one-class scorer with out-of-sample query support."""

    def __init__(self, n_neighbors: int = 20, contamination: float = 0.05):
        check_positive_int(n_neighbors, "n_neighbors")
        check_probability(contamination, "contamination")
        self.n_neighbors = n_neighbors
        self.contamination = contamination
        self._x: np.ndarray | None = None
        self._k_distance: np.ndarray | None = None
        self._lrd: np.ndarray | None = None
        self._neighbors: np.ndarray | None = None
        self.threshold_: float | None = None
        self.train_scores_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "LocalOutlierFactor":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if len(x) < 2:
            raise ValueError("LOF requires at least two training samples")
        k = min(self.n_neighbors, len(x) - 1)
        self._x = x.copy()
        distances = _pairwise(x, x)
        np.fill_diagonal(distances, np.inf)
        order = np.argsort(distances, axis=1)[:, :k]
        neighbor_distances = np.take_along_axis(distances, order, axis=1)
        self._neighbors = order
        self._k_distance = neighbor_distances[:, -1]
        # Reachability distance of p from o: max(k-distance(o), d(p, o)).
        reach = np.maximum(self._k_distance[order], neighbor_distances)
        self._lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
        lof = (self._lrd[order].mean(axis=1)) / self._lrd
        self.train_scores_ = lof
        self.threshold_ = contamination_threshold(lof, self.contamination)
        return self

    def decision_scores(self, x: np.ndarray) -> np.ndarray:
        """LOF scores of query points w.r.t. the training set (>1 = outlying)."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        k = self._neighbors.shape[1]
        distances = _pairwise(x, self._x)
        order = np.argsort(distances, axis=1)[:, :k]
        neighbor_distances = np.take_along_axis(distances, order, axis=1)
        reach = np.maximum(self._k_distance[order], neighbor_distances)
        lrd_query = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
        return self._lrd[order].mean(axis=1) / lrd_query

    def is_outlier(self, x: np.ndarray) -> np.ndarray:
        return self.decision_scores(x) > self.threshold_

    def refit(self, x: np.ndarray) -> "LocalOutlierFactor":
        """Re-baseline on fresh embeddings (coordinated refresh).

        LOF keeps no RNG, so refit is exactly a fresh :meth:`fit` — the
        method exists so every detector exposes the same refresh
        capability surface.
        """
        return self.fit(x)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: hyper-parameters + fitted arrays.

        ``decision_scores`` is a deterministic function of these arrays,
        so a restored detector scores bit-for-bit identically.
        """
        self._require_fitted()
        return {
            "n_neighbors": self.n_neighbors,
            "contamination": self.contamination,
            "x": self._x.copy(),
            "k_distance": self._k_distance.copy(),
            "lrd": self._lrd.copy(),
            "neighbors": self._neighbors.copy(),
            "threshold": float(self.threshold_),
            "train_scores": self.train_scores_.copy(),
        }

    def load_state_dict(self, state: dict) -> "LocalOutlierFactor":
        """Restore a detector saved by :meth:`state_dict`."""
        x = np.asarray(state["x"], dtype=np.float64)
        neighbors = np.asarray(state["neighbors"], dtype=np.int64)
        if x.ndim != 2 or len(x) < 2:
            raise ValueError(f"LOF state has a degenerate training matrix of shape {x.shape}")
        if neighbors.ndim != 2 or len(neighbors) != len(x):
            raise ValueError(f"LOF state neighbors shape {neighbors.shape} does not "
                             f"match {len(x)} training samples")
        if neighbors.size and (neighbors.min() < 0 or neighbors.max() >= len(x)):
            raise ValueError("LOF state neighbors index outside the training set")
        for name in ("k_distance", "lrd", "train_scores"):
            arr = np.asarray(state[name], dtype=np.float64)
            if arr.shape != (len(x),):
                raise ValueError(f"LOF state {name} has shape {arr.shape}, expected "
                                 f"({len(x)},) to match the training set")
        check_positive_int(int(state["n_neighbors"]), "n_neighbors")
        check_probability(float(state["contamination"]), "contamination")
        self.n_neighbors = int(state["n_neighbors"])
        self.contamination = float(state["contamination"])
        self._x = x
        self._k_distance = np.asarray(state["k_distance"], dtype=np.float64)
        self._lrd = np.asarray(state["lrd"], dtype=np.float64)
        self._neighbors = neighbors
        self.threshold_ = float(state["threshold"])
        self.train_scores_ = np.asarray(state["train_scores"], dtype=np.float64)
        return self

    def _require_fitted(self) -> None:
        if self._x is None:
            raise RuntimeError("LocalOutlierFactor has not been fitted; call fit first")


def _pairwise(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between rows of ``a`` and rows of ``b``."""
    aa = (a * a).sum(axis=1)[:, None]
    bb = (b * b).sum(axis=1)[None, :]
    squared = np.maximum(aa + bb - 2.0 * a @ b.T, 0.0)
    return np.sqrt(squared)
