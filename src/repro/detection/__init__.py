"""One-class outlier detectors over record embeddings."""

from repro.detection.feature_bagging import FeatureBagging
from repro.detection.histogram import HistogramConfig, HistogramDetector
from repro.detection.iforest import IsolationForest
from repro.detection.lof import LocalOutlierFactor
from repro.detection.threshold import MinMaxNormalizer, contamination_threshold

__all__ = [
    "FeatureBagging",
    "HistogramConfig",
    "HistogramDetector",
    "IsolationForest",
    "LocalOutlierFactor",
    "MinMaxNormalizer",
    "contamination_threshold",
]
