"""Visualisation helpers (t-SNE for the Fig. 6 embedding plot)."""

from repro.viz.tsne import tsne

__all__ = ["tsne"]
