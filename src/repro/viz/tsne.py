"""A minimal t-SNE implementation (van der Maaten & Hinton, 2008).

Used to reproduce the paper's Fig. 6 sanity check: record-node and
MAC-node embeddings should form separate clusters in 2-D.  Implements
the standard algorithm — perplexity-calibrated Gaussian affinities in
the input space, Student-t affinities in the map, KL-divergence gradient
descent with early exaggeration and momentum.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["tsne"]


def _pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    sums = (x * x).sum(axis=1)
    d2 = sums[:, None] + sums[None, :] - 2.0 * x @ x.T
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _binary_search_sigmas(d2: np.ndarray, perplexity: float,
                          tolerance: float = 1e-4, max_iter: int = 50) -> np.ndarray:
    """Per-point conditional affinities P(j|i) at the target perplexity."""
    n = len(d2)
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = 0.0, np.inf
        beta = 1.0
        row = d2[i].copy()
        row[i] = np.inf
        for _ in range(max_iter):
            exponent = -row * beta
            exponent -= exponent.max()
            weights = np.exp(exponent)
            weights[i] = 0.0
            total = weights.sum()
            if total <= 0:
                prob = np.zeros(n)
                entropy = 0.0
            else:
                prob = weights / total
                nonzero = prob > 0
                entropy = -np.sum(prob[nonzero] * np.log(prob[nonzero]))
            diff = entropy - target_entropy
            if abs(diff) < tolerance:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low == 0.0 else (beta + beta_low) / 2.0
        p[i] = prob
    return p


def tsne(x: np.ndarray, dim: int = 2, perplexity: float = 20.0,
         iterations: int = 400, learning_rate: float = 100.0,
         early_exaggeration: float = 4.0, exaggeration_iters: int = 80,
         momentum: float = 0.8, seed=None) -> np.ndarray:
    """Embed rows of ``x`` into ``dim`` dimensions with t-SNE."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    n = len(x)
    check_positive_int(dim, "dim")
    check_positive(perplexity, "perplexity")
    check_positive_int(iterations, "iterations")
    if n < 4:
        raise ValueError("t-SNE needs at least four samples")
    perplexity = min(perplexity, (n - 1) / 3.0)

    d2 = _pairwise_sq_distances(x)
    conditional = _binary_search_sigmas(d2, perplexity)
    p = (conditional + conditional.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    rng = as_rng(seed)
    y = rng.normal(0.0, 1e-4, size=(n, dim))
    velocity = np.zeros_like(y)

    for iteration in range(iterations):
        exaggeration = early_exaggeration if iteration < exaggeration_iters else 1.0
        dy2 = _pairwise_sq_distances(y)
        q_num = 1.0 / (1.0 + dy2)
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), 1e-12)
        # Gradient of KL(P||Q) w.r.t. the map points.
        pq = (exaggeration * p - q) * q_num
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y
