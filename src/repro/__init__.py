"""GEM: semi-supervised geofencing with network embedding on ambient RF signals.

A from-scratch reproduction of the ICDE 2023 paper (Zhuo et al.): the
weighted-bipartite-graph signal model, the BiSAGE bipartite GNN, the
enhanced histogram one-class detector with online self-update, every
baseline the paper compares against, and an RF measurement simulator
substituting for the paper's physical data collection.

Quickstart::

    from repro import GEM, GEMConfig
    from repro.datasets import user_dataset

    data = user_dataset(3)             # one of the Table II homes
    gem = GEM(GEMConfig()).fit(data.train)
    decision = gem.observe(data.test[0].record)
    print(decision.inside, decision.score)
"""

from repro.core import (
    GEM,
    EmbeddingGeofencer,
    GEMConfig,
    GeofenceDecision,
    LabeledRecord,
    SignalRecord,
)
from repro.detection import HistogramConfig, HistogramDetector
from repro.embedding import BiSAGE, BiSAGEConfig
from repro.pipeline import ComponentSpec, PipelineSpec, build_pipeline

__version__ = "1.1.0"

__all__ = [
    "BiSAGE",
    "BiSAGEConfig",
    "ComponentSpec",
    "EmbeddingGeofencer",
    "GEM",
    "GEMConfig",
    "GeofenceDecision",
    "HistogramConfig",
    "HistogramDetector",
    "LabeledRecord",
    "PipelineSpec",
    "SignalRecord",
    "build_pipeline",
    "__version__",
]
