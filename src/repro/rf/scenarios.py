"""Deployment-site builders: homes, the lab+corridor floor, multi-floor buildings.

These reproduce the paper's experiment sites as simulated worlds:

* homes from a single-room dorm (~10 m²) to a detached two-storey house
  (~200 m²), embedded among neighbouring flats/corridors whose ambient
  APs are what the device actually senses (Sec. V, Table II);
* the lab with a two-metre corridor right outside its wall — the hard
  boundary case of Fig. 15(a);
* generic multi-storey buildings with per-floor AP populations and
  floor-slab attenuation for the mall and UJI experiments (Sec. V-E).

Every builder is deterministic in its ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rf.ap import AccessPoint
from repro.rf.environment import Environment
from repro.rf.geometry import Polygon, Rect, Segment
from repro.rf.materials import BRICK, CONCRETE, DRYWALL, EXTERIOR_BRICK, GLASS
from repro.rf.propagation import PropagationConfig, Wall
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["SiteScenario", "home_scenario", "lab_scenario", "multi_floor_building"]


@dataclass
class SiteScenario:
    """A built world: environment plus labelled movement regions.

    ``inside_regions``/``outside_regions`` are (polygon, floor) pairs the
    dataset generators draw trajectories from; ``perimeter_region`` is
    where the initial training walk happens (the geofenced area itself).
    """

    name: str
    environment: Environment
    inside_regions: list[tuple[Polygon, int]]
    outside_regions: list[tuple[Polygon, int]]
    perimeter_region: tuple[Polygon, int]
    area_m2: float
    extras: dict = field(default_factory=dict)


def _rect_walls(rect: Rect, material, floor: int = 0) -> list[Wall]:
    return [Wall(edge, material, floor) for edge in rect.edges()]


def _make_aps(rng, positions_floors, start_id: int, single_band_fraction: float,
              tx_power_dbm: float = 16.0) -> list[AccessPoint]:
    """Create APs at given (position, floor)s; a fraction are 2.4-only."""
    aps = []
    for offset, (position, floor) in enumerate(positions_floors):
        if rng.random() < single_band_fraction:
            bands: tuple[str, ...] = ("2.4",)
        else:
            bands = ("2.4", "5")
        jitter = rng.normal(0.0, 1.5)
        aps.append(AccessPoint.create(start_id + offset, position, floor=floor,
                                      bands=bands,
                                      tx_power_dbm=tx_power_dbm + float(np.clip(jitter, -4, 4))))
    return aps


def home_scenario(area_m2: float = 50.0, aps_inside: int = 1, aps_near: int = 8,
                  aps_far: int = 5, detached: bool = False, seed: int = 0,
                  single_band_fraction: float = 0.35,
                  name: str | None = None) -> SiteScenario:
    """A home embedded in its RF neighbourhood.

    Attached homes (dorm/apartment) sit between neighbouring flats and a
    corridor behind brick party walls; a detached house has its
    neighbours 12–25 m away across open air.  ``aps_near`` live in the
    immediate neighbours, ``aps_far`` in buildings further out (weak,
    intermittently heard — the MAC-churn source).
    """
    check_positive(area_m2, "area_m2")
    rng = as_rng(seed)
    floors = (0, 1) if detached else (0,)
    footprint = area_m2 / len(floors)
    width = float(np.sqrt(footprint * 1.3))
    height = footprint / width
    home = Rect(0.0, 0.0, width, height)

    walls: list[Wall] = []
    exterior = EXTERIOR_BRICK if detached else BRICK
    for floor in floors:
        walls.extend(_rect_walls(home, exterior, floor))
        if width > 4.0:  # interior partition
            x_split = width * 0.55
            walls.append(Wall(Segment((x_split, 0.0), (x_split, height * 0.7)), DRYWALL, floor))
        if height > 5.0:
            y_split = height * 0.5
            walls.append(Wall(Segment((0.0, y_split), (width * 0.6, y_split)), DRYWALL, floor))

    inside_positions = [(home.shrunk(min(1.0, min(width, height) / 4)).sample_point(rng), floors[0])
                        for _ in range(aps_inside)]
    if detached and len(floors) > 1 and aps_inside > 1:
        inside_positions[-1] = (inside_positions[-1][0], floors[1])

    near_positions = []
    outside_regions: list[tuple[Polygon, int]] = []
    if detached:
        # Neighbouring houses 12–25 m out, garden ring immediately outside.
        for _ in range(aps_near):
            angle = rng.uniform(0, 2 * np.pi)
            radius = rng.uniform(12.0, 25.0)
            near_positions.append(((width / 2 + radius * np.cos(angle),
                                    height / 2 + radius * np.sin(angle)), 0))
        garden = Rect(-6.0, -6.0, width + 6.0, height + 6.0)
        outside_regions.append((garden, 0))
        street = Rect(-20.0, -14.0, width + 20.0, -8.0)
        outside_regions.append((street, 0))
        # Genuinely away: far enough that the home network is out of reach.
        away = Rect(-30.0, -60.0, width + 30.0, -40.0)
        outside_regions.append((away, 0))
    else:
        corridor = Rect(-0.5, -2.4, width + 0.5, -0.4)
        walls.append(Wall(Segment((-0.5, -0.4), (width + 0.5, -0.4)), BRICK, 0))
        walls.append(Wall(Segment((-0.5, -2.4), (width + 0.5, -2.4)), BRICK, 0))
        east_flat = Rect(width + 0.3, 0.0, 2 * width + 0.3, height)
        west_flat = Rect(-width - 0.3, 0.0, -0.3, height)
        north_flat = Rect(0.0, height + 0.3, width, 2 * height + 0.3)
        south_flats = Rect(-0.5, -2.4 - height, width + 0.5, -2.6)
        for flat in (east_flat, west_flat, north_flat):
            walls.extend(_rect_walls(flat, BRICK, 0))
        neighbour_homes = [east_flat, west_flat, north_flat, south_flats]
        for i in range(aps_near):
            flat = neighbour_homes[i % len(neighbour_homes)]
            near_positions.append((flat.sample_point(rng), 0))
        outside_regions.append((corridor, 0))
        outside_regions.append((east_flat.shrunk(0.8), 0))
        outside_regions.append((south_flats.shrunk(0.8), 0))
        # Genuinely away: the street outside the building, beyond WiFi reach.
        away = Rect(-25.0, -55.0, width + 25.0, -35.0)
        outside_regions.append((away, 0))

    # Far APs sit at the edge of audibility: heard sporadically, mostly
    # missing from any given record.  They are what grows the MAC universe
    # and produces the variable-length-record churn the paper highlights.
    far_positions = []
    for _ in range(aps_far):
        angle = rng.uniform(0, 2 * np.pi)
        radius = rng.uniform(35.0, 70.0)
        far_positions.append(((width / 2 + radius * np.cos(angle),
                               height / 2 + radius * np.sin(angle)),
                              int(rng.integers(0, 2))))

    aps = (_make_aps(rng, inside_positions, 1, single_band_fraction=0.1, tx_power_dbm=17.0)
           + _make_aps(rng, near_positions, 100, single_band_fraction, tx_power_dbm=16.0)
           + _make_aps(rng, far_positions, 500, single_band_fraction, tx_power_dbm=15.0))

    environment = Environment(
        walls=walls, aps=aps, geofence=home, geofence_floors=floors,
        propagation_config=PropagationConfig(seed=seed),
    )
    inside_regions = [(home, floor) for floor in floors]
    label = name or ("two-storey-house" if detached else f"home-{int(area_m2)}m2")
    return SiteScenario(name=label, environment=environment,
                        inside_regions=inside_regions,
                        outside_regions=outside_regions,
                        perimeter_region=(home, floors[0]),
                        area_m2=area_m2)


def lab_scenario(seed: int = 0, transient_aps: int = 0,
                 lab_aps: int = 2, corridor_aps: int = 3, building_aps: int = 8,
                 name: str = "lab") -> SiteScenario:
    """The Fig. 15(a) floor: a lab with a 2 m corridor right outside.

    ``transient_aps`` adds low-power hotspots (phones of people around at
    busy hours) in the corridor and nearby rooms — the mechanism behind
    the Table III MAC-count swings across the day.
    """
    rng = as_rng(seed)
    lab = Rect(0.0, 0.0, 15.0, 8.0)
    corridor = Rect(-4.0, -2.0, 19.0, 0.0)
    rooms_south = Rect(-4.0, -10.0, 19.0, -2.2)
    walls = _rect_walls(lab, BRICK)
    # Lab front onto the corridor is drywall + glass (typical office front).
    walls.append(Wall(Segment((0.0, 0.0), (15.0, 0.0)), GLASS, 0))
    walls.append(Wall(Segment((-4.0, -2.0), (19.0, -2.0)), DRYWALL, 0))
    walls.extend(_rect_walls(rooms_south, DRYWALL, 0))
    # Interior benches/partitions in the lab.
    walls.append(Wall(Segment((5.0, 1.0), (5.0, 7.0)), DRYWALL, 0))
    walls.append(Wall(Segment((10.0, 1.0), (10.0, 7.0)), DRYWALL, 0))

    positions = [(lab.shrunk(1.0).sample_point(rng), 0) for _ in range(lab_aps)]
    positions += [(corridor.shrunk(0.5).sample_point(rng), 0) for _ in range(corridor_aps)]
    positions += [(rooms_south.shrunk(1.0).sample_point(rng), 0) for _ in range(building_aps)]
    aps = _make_aps(rng, positions, 1, single_band_fraction=0.25, tx_power_dbm=17.0)
    if transient_aps:
        hotspot_positions = [((corridor if i % 2 else rooms_south).shrunk(0.5).sample_point(rng), 0)
                             for i in range(transient_aps)]
        aps += _make_aps(rng, hotspot_positions, 900, single_band_fraction=0.5,
                         tx_power_dbm=10.0)

    environment = Environment(walls=walls, aps=aps, geofence=lab,
                              geofence_floors=(0,),
                              propagation_config=PropagationConfig(seed=seed))
    return SiteScenario(name=name, environment=environment,
                        inside_regions=[(lab, 0)],
                        outside_regions=[(corridor, 0), (rooms_south.shrunk(0.8), 0)],
                        perimeter_region=(lab, 0),
                        area_m2=lab.area)


def multi_floor_building(num_floors: int = 5, width: float = 60.0, depth: float = 40.0,
                         aps_per_floor: int = 10, geofence_floor: int = 2,
                         seed: int = 0, name: str = "building",
                         interior_walls_per_floor: int = 4,
                         floor_material=None) -> SiteScenario:
    """A multi-storey building geofencing one whole floor (mall/UJI setup).

    APs leak across floors through slab attenuation, which is exactly
    the confusion structure the scalability experiments probe.
    ``floor_material`` sets the effective per-floor attenuation: buildings
    with open atria and stairwells (malls, campus buildings) leak far
    more than a solid slab would suggest, which is why per-AP-pair and
    MAC-overlap methods confuse adjacent floors there (Sec. V-E).
    """
    if not 0 <= geofence_floor < num_floors:
        raise ValueError(f"geofence_floor {geofence_floor} outside 0..{num_floors - 1}")
    rng = as_rng(seed)
    from repro.rf.materials import FLOOR_SLAB  # local import avoids cycle noise
    effective_floor = floor_material or FLOOR_SLAB
    footprint = Rect(0.0, 0.0, width, depth)
    walls: list[Wall] = []
    positions = []
    for floor in range(num_floors):
        walls.extend(_rect_walls(footprint, CONCRETE, floor))
        for _ in range(interior_walls_per_floor):
            x = rng.uniform(width * 0.15, width * 0.85)
            y0 = rng.uniform(0, depth * 0.4)
            walls.append(Wall(Segment((x, y0), (x, y0 + depth * 0.4)), DRYWALL, floor))
        for _ in range(aps_per_floor):
            positions.append((footprint.shrunk(2.0).sample_point(rng), floor))
    aps = _make_aps(rng, positions, 1, single_band_fraction=0.3, tx_power_dbm=18.0)

    environment = Environment(walls=walls, aps=aps, geofence=footprint,
                              geofence_floors=(geofence_floor,),
                              propagation_config=PropagationConfig(seed=seed,
                                                                   floor_material=effective_floor))
    inside_regions = [(footprint, geofence_floor)]
    outside_regions = [(footprint, floor) for floor in range(num_floors)
                       if floor != geofence_floor]
    return SiteScenario(name=name, environment=environment,
                        inside_regions=inside_regions,
                        outside_regions=outside_regions,
                        perimeter_region=(footprint, geofence_floor),
                        area_m2=footprint.area * num_floors,
                        extras={"num_floors": num_floors, "geofence_floor": geofence_floor})
