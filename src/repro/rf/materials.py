"""Wall and floor materials with per-band RF attenuation.

Attenuations follow the figures the paper itself quotes in Sec. VI
("3 dB for drywalls … up to 10 dB for brick walls") and standard indoor
propagation surveys; 5 GHz penetrates construction materials worse than
2.4 GHz, which is what makes the Fig. 15(d) band experiment come out the
way it does.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Material",
    "DRYWALL",
    "BRICK",
    "CONCRETE",
    "GLASS",
    "WOOD",
    "FLOOR_SLAB",
    "EXTERIOR_BRICK",
]


@dataclass(frozen=True)
class Material:
    """An RF-attenuating construction material."""

    name: str
    attenuation_db_24: float  # dB lost per crossing at 2.4 GHz
    attenuation_db_5: float   # dB lost per crossing at 5 GHz

    def __post_init__(self):
        if self.attenuation_db_24 < 0 or self.attenuation_db_5 < 0:
            raise ValueError(f"attenuation must be non-negative for {self.name}")

    def attenuation(self, band: str) -> float:
        """Attenuation for band '2.4' or '5' (GHz)."""
        if band == "2.4":
            return self.attenuation_db_24
        if band == "5":
            return self.attenuation_db_5
        raise ValueError(f"unknown band {band!r}; expected '2.4' or '5'")


DRYWALL = Material("drywall", 3.0, 4.5)
WOOD = Material("wood", 4.0, 6.0)
GLASS = Material("glass", 2.0, 3.0)
BRICK = Material("brick", 10.0, 14.0)
EXTERIOR_BRICK = Material("exterior-brick", 12.0, 17.0)
CONCRETE = Material("concrete", 13.0, 18.0)
FLOOR_SLAB = Material("floor-slab", 18.0, 26.0)
