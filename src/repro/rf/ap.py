"""Access points: positions, radios, MAC addresses.

Each physical AP carries one radio per supported band, and each radio
has its own MAC address — matching the paper's observation that "each AP
can have one or more MAC addresses associated with its transceivers"
(Sec. III-A footnote).  MAC strings are deterministic functions of the
AP id so scenario regeneration is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rf.geometry import Point

__all__ = ["Radio", "AccessPoint", "make_mac"]


def make_mac(ap_id: int, band: str) -> str:
    """Deterministic, locally-administered style MAC string for a radio."""
    band_code = 0x24 if band == "2.4" else 0x50
    return f"02:{band_code:02x}:{(ap_id >> 16) & 0xFF:02x}:{(ap_id >> 8) & 0xFF:02x}:{ap_id & 0xFF:02x}:01"


@dataclass(frozen=True)
class Radio:
    """One transceiver of an AP."""

    mac: str
    band: str               # '2.4' or '5'
    tx_power_dbm: float = 20.0

    def __post_init__(self):
        if self.band not in ("2.4", "5"):
            raise ValueError(f"band must be '2.4' or '5', got {self.band!r}")


@dataclass(frozen=True)
class AccessPoint:
    """A physical AP at a position, on a floor, with one radio per band."""

    ap_id: int
    position: Point
    floor: int = 0
    radios: tuple[Radio, ...] = ()

    @staticmethod
    def create(ap_id: int, position: Point, floor: int = 0,
               bands: tuple[str, ...] = ("2.4", "5"),
               tx_power_dbm: float = 20.0) -> "AccessPoint":
        """Build an AP with one radio (and distinct MAC) per band."""
        radios = tuple(Radio(make_mac(ap_id, band), band, tx_power_dbm) for band in bands)
        return AccessPoint(ap_id=ap_id, position=tuple(map(float, position)),
                           floor=floor, radios=radios)

    @property
    def macs(self) -> tuple[str, ...]:
        return tuple(radio.mac for radio in self.radios)
