"""Indoor RF propagation: path loss, walls, floors, shadowing, fading.

The received signal strength from a radio at distance ``d`` is

    RSS = P_tx − PL(d0) − 10·n·log10(d / d0)          (log-distance)
          − Σ walls crossed (per-material, per-band)   (obstruction)
          − |Δfloor| · slab attenuation                 (floors)
          + X_shadow(position cell, AP)                (spatial, static)
          + X_fading(t)                                (temporal)
          + crowd_penalty(busyness)                    (Fig. 15(b) factor)

Spatial shadowing is a *frozen* random field: a deterministic Gaussian
value per (radio, floor, grid cell) hashed from the environment seed.
Revisiting a spot reproduces the same shadowing — this is what makes RF
fingerprints learnable at all — while temporal fading varies per scan.
Higher bands start from a larger free-space reference loss and attenuate
harder through materials, reproducing the Fig. 15(d) band ordering.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.rf.geometry import Point, Segment, distance, segments_intersect
from repro.rf.materials import FLOOR_SLAB, Material

__all__ = ["BandParams", "PropagationConfig", "PropagationModel", "Wall"]


@dataclass(frozen=True)
class Wall:
    """A wall segment on a floor, made of some material."""

    segment: Segment
    material: Material
    floor: int = 0


@dataclass(frozen=True)
class BandParams:
    """Per-band large-scale propagation parameters."""

    reference_loss_db: float   # free-space loss at d0 = 1 m
    path_loss_exponent: float

    def path_loss(self, d: float) -> float:
        d = max(d, 0.5)  # near-field clamp
        return self.reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(d)


# Free-space reference loss at 1 m: 40.05 dB @ 2.4 GHz, 46.4 dB @ 5 GHz.
_DEFAULT_BANDS = {
    "2.4": BandParams(reference_loss_db=40.05, path_loss_exponent=2.7),
    "5": BandParams(reference_loss_db=46.4, path_loss_exponent=2.9),
}


@dataclass(frozen=True)
class PropagationConfig:
    """Environment-level propagation knobs."""

    bands: dict = field(default_factory=lambda: dict(_DEFAULT_BANDS))
    shadowing_sigma_db: float = 3.0
    shadowing_cell_m: float = 8.0
    fading_sigma_db: float = 1.5
    drift_sigma_db: float = 3.0
    drift_block_s: float = 600.0
    deep_fade_probability: float = 0.08
    deep_fade_scale_db: float = 6.0
    floor_material: Material = FLOOR_SLAB
    seed: int = 0

    def __post_init__(self):
        if self.shadowing_sigma_db < 0 or self.fading_sigma_db < 0 or self.drift_sigma_db < 0:
            raise ValueError("noise sigmas must be non-negative")
        if self.shadowing_cell_m <= 0 or self.drift_block_s <= 0:
            raise ValueError("shadowing_cell_m and drift_block_s must be positive")
        if not 0.0 <= self.deep_fade_probability <= 1.0:
            raise ValueError("deep_fade_probability must be in [0, 1]")
        if self.deep_fade_scale_db < 0:
            raise ValueError("deep_fade_scale_db must be non-negative")
        for band, params in self.bands.items():
            if band not in ("2.4", "5"):
                raise ValueError(f"unknown band {band!r}")
            if params.path_loss_exponent <= 0:
                raise ValueError("path_loss_exponent must be positive")


class PropagationModel:
    """Computes RSS between radios and device positions."""

    def __init__(self, walls: list[Wall], config: PropagationConfig = PropagationConfig()):
        self.walls = list(walls)
        self.config = config
        self._shadow_cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Deterministic spatial shadowing field
    # ------------------------------------------------------------------
    def _grid_noise(self, mac: str, floor: int, node: tuple[int, int]) -> float:
        """Frozen Gaussian value at one shadowing grid node."""
        key = (mac, floor, node)
        cached = self._shadow_cache.get(key)
        if cached is None:
            # zlib.crc32 is stable across processes (builtin hash() is
            # randomised per interpreter run and would break determinism).
            entropy = (self.config.seed, zlib.crc32(mac.encode()) & 0x7FFFFFFF, floor,
                       node[0] & 0xFFFF, node[1] & 0xFFFF)
            rng = np.random.default_rng(np.random.SeedSequence(entropy=entropy))
            cached = float(rng.normal(0.0, self.config.shadowing_sigma_db))
            self._shadow_cache[key] = cached
        return cached

    def _shadowing(self, mac: str, floor: int, position: Point) -> float:
        """Spatially *correlated* frozen shadowing field.

        Bilinear interpolation of per-grid-node Gaussian values: nearby
        positions see nearly the same shadowing (correlation length ≈
        ``shadowing_cell_m``), which is what makes RF fingerprints of an
        area learnable from a perimeter walk.
        """
        gx = position[0] / self.config.shadowing_cell_m
        gy = position[1] / self.config.shadowing_cell_m
        i, j = int(math.floor(gx)), int(math.floor(gy))
        fx, fy = gx - i, gy - j
        value = ((1 - fx) * (1 - fy) * self._grid_noise(mac, floor, (i, j))
                 + fx * (1 - fy) * self._grid_noise(mac, floor, (i + 1, j))
                 + (1 - fx) * fy * self._grid_noise(mac, floor, (i, j + 1))
                 + fx * fy * self._grid_noise(mac, floor, (i + 1, j + 1)))
        return value

    # ------------------------------------------------------------------
    # Obstruction
    # ------------------------------------------------------------------
    def wall_loss(self, a: Point, b: Point, floor: int, band: str) -> float:
        """Total attenuation of walls on ``floor`` crossing segment a→b."""
        ray = Segment(tuple(a), tuple(b))
        total = 0.0
        for wall in self.walls:
            if wall.floor != floor:
                continue
            if segments_intersect(ray, wall.segment):
                total += wall.material.attenuation(band)
        return total

    def floor_loss(self, floor_a: int, floor_b: int, band: str) -> float:
        return abs(floor_a - floor_b) * self.config.floor_material.attenuation(band)

    # ------------------------------------------------------------------
    # RSS
    # ------------------------------------------------------------------
    def mean_rss(self, tx_power_dbm: float, mac: str, band: str,
                 ap_position: Point, ap_floor: int,
                 position: Point, floor: int) -> float:
        """Expected RSS (no temporal fading): path loss + obstructions + shadowing."""
        params = self.config.bands.get(band)
        if params is None:
            raise ValueError(f"band {band!r} not configured")
        d = distance(ap_position, position)
        rss = tx_power_dbm - params.path_loss(d)
        if ap_floor == floor:
            rss -= self.wall_loss(ap_position, position, floor, band)
        else:
            # Cross-floor: the slab(s) dominate; same-floor walls of either
            # endpoint's floor still obstruct the lateral component.
            rss -= self.floor_loss(ap_floor, floor, band)
            rss -= 0.5 * (self.wall_loss(ap_position, position, ap_floor, band)
                          + self.wall_loss(ap_position, position, floor, band))
        rss += self._shadowing(mac, floor, position)
        return rss

    def _drift_block_value(self, mac: str, block: int) -> float:
        """Frozen Gaussian drift anchor for one (radio, time block)."""
        key = (mac, "drift", block)
        cached = self._shadow_cache.get(key)
        if cached is None:
            entropy = (self.config.seed, zlib.crc32(mac.encode()) & 0x7FFFFFFF,
                       0xD41F, block & 0xFFFFF)
            rng = np.random.default_rng(np.random.SeedSequence(entropy=entropy))
            cached = float(rng.normal(0.0, self.config.drift_sigma_db))
            self._shadow_cache[key] = cached
        return cached

    def temporal_drift(self, mac: str, time_s: float) -> float:
        """Slow per-radio RSS drift over time (people, doors, interference).

        Piecewise-linear interpolation between frozen per-block Gaussian
        anchors: scans minutes apart see nearly the same environment,
        scans an hour apart see a drifted one.  This is the paper's
        "dynamic RF environment" — the phenomenon its online self-update
        is designed to track.
        """
        if self.config.drift_sigma_db == 0:
            return 0.0
        x = time_s / self.config.drift_block_s
        block = int(math.floor(x))
        frac = x - block
        return ((1 - frac) * self._drift_block_value(mac, block)
                + frac * self._drift_block_value(mac, block + 1))

    def sample_rss(self, tx_power_dbm: float, mac: str, band: str,
                   ap_position: Point, ap_floor: int,
                   position: Point, floor: int,
                   rng, crowd_penalty_db: float = 0.0,
                   time_s: float = 0.0) -> float:
        """One noisy scan reading: mean RSS + drift + fading − crowd loss."""
        rss = self.mean_rss(tx_power_dbm, mac, band, ap_position, ap_floor, position, floor)
        rss += self.temporal_drift(mac, time_s)
        if self.config.fading_sigma_db > 0:
            rss += float(rng.normal(0.0, self.config.fading_sigma_db))
        # Small-scale multipath: occasional deep fades, exponentially
        # distributed in dB (the heavy tail Gaussian fading lacks).  Deep
        # fades can push a weak beacon below sensitivity, which is one of
        # the mechanisms behind variable-length records.
        if self.config.deep_fade_probability > 0 and rng.random() < self.config.deep_fade_probability:
            rss -= float(rng.exponential(self.config.deep_fade_scale_db))
        return rss - max(crowd_penalty_db, 0.0)
