"""Scanning-device model: sensitivity floor and soft detection edge.

Real phones do not detect an AP deterministically at the sensitivity
limit: weak beacons are missed probabilistically.  The soft edge is what
makes consecutive scans at the *same* spot return different MAC sets —
the variable-record-length phenomenon GEM's graph model is built for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = ["Device"]


@dataclass(frozen=True)
class Device:
    """An IoT scanner (phone / watch).

    ``sensitivity_dbm`` is the level below which nothing is heard;
    between ``sensitivity_dbm`` and ``sensitivity_dbm + soft_range_db``
    the detection probability ramps linearly from 0 to 1.  ``bands``
    restricts which radios the device can hear (Fig. 15(d)).
    """

    sensitivity_dbm: float = -95.0
    soft_range_db: float = 10.0
    bands: tuple[str, ...] = ("2.4", "5")
    measurement_noise_db: float = 1.0

    def __post_init__(self):
        check_positive(self.soft_range_db, "soft_range_db")
        if self.measurement_noise_db < 0:
            raise ValueError("measurement_noise_db must be non-negative")
        for band in self.bands:
            if band not in ("2.4", "5"):
                raise ValueError(f"unknown band {band!r}")

    def detection_probability(self, rss: float) -> float:
        """Probability that a beacon at ``rss`` is detected in one scan."""
        if rss <= self.sensitivity_dbm:
            return 0.0
        edge = self.sensitivity_dbm + self.soft_range_db
        if rss >= edge:
            return 1.0
        return (rss - self.sensitivity_dbm) / self.soft_range_db

    def hears_band(self, band: str) -> bool:
        return band in self.bands
