"""Environment: floorplan walls + ambient APs + a geofence region."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rf.ap import AccessPoint
from repro.rf.geometry import Point, Polygon
from repro.rf.propagation import PropagationConfig, PropagationModel, Wall

__all__ = ["Environment"]


@dataclass
class Environment:
    """Everything static about a deployment site.

    The geofence is a polygon on one or more floors (a two-storey house
    geofences both its floors; a mall experiment geofences one floor of
    the whole footprint).
    """

    walls: list[Wall]
    aps: list[AccessPoint]
    geofence: Polygon
    geofence_floors: tuple[int, ...] = (0,)
    propagation_config: PropagationConfig = field(default_factory=PropagationConfig)

    def __post_init__(self):
        if not self.aps:
            raise ValueError("an environment needs at least one access point")
        self.propagation = PropagationModel(self.walls, self.propagation_config)

    def is_inside(self, position: Point, floor: int = 0) -> bool:
        """Ground-truth geofence membership of a pose."""
        return floor in self.geofence_floors and self.geofence.contains(position)

    @property
    def all_macs(self) -> list[str]:
        return [mac for ap in self.aps for mac in ap.macs]

    def without_aps(self, ap_ids: set[int]) -> "Environment":
        """A copy with some APs removed (AP-churn experiments)."""
        remaining = [ap for ap in self.aps if ap.ap_id not in ap_ids]
        return Environment(walls=self.walls, aps=remaining, geofence=self.geofence,
                           geofence_floors=self.geofence_floors,
                           propagation_config=self.propagation_config)
