"""Two-state ON-OFF Markov dynamics for APs (Fig. 11 / Fig. 12).

Each AP/MAC independently follows a two-state chain: in state ON its
readings survive, in state OFF they disappear from the records.  State
transitions (including self-transitions) occur every ``period`` samples:
ON→OFF with probability ``p``, OFF→ON with probability ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.records import SignalRecord, unique_macs
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["OnOffMarkov", "apply_ap_onoff", "markov_entropy_rate"]


@dataclass(frozen=True)
class OnOffMarkov:
    """The chain of Fig. 11: ``p`` = Pr(ON→OFF), ``q`` = Pr(OFF→ON)."""

    p: float
    q: float

    def __post_init__(self):
        check_probability(self.p, "p")
        check_probability(self.q, "q")

    def stationary_on_probability(self) -> float:
        """Long-run fraction of time in ON."""
        if self.p + self.q == 0:
            return 1.0  # absorbing in the initial (ON) state
        return self.q / (self.p + self.q)

    def simulate(self, steps: int, rng=None, start_on: bool = True) -> list[bool]:
        """State sequence of length ``steps`` (True = ON)."""
        check_positive_int(steps, "steps")
        rng = as_rng(rng)
        state = start_on
        out = []
        for _ in range(steps):
            out.append(state)
            if state:
                state = rng.random() >= self.p
            else:
                state = rng.random() < self.q
        return out


def apply_ap_onoff(records: Sequence[SignalRecord], p: float, q: float,
                   period: int = 30, rng=None,
                   macs: Sequence[str] | None = None) -> list[SignalRecord]:
    """Apply independent ON-OFF chains per MAC over a record stream.

    Every MAC holds its state for ``period`` consecutive records, then
    transitions (the paper: "each state transition … takes place every 30
    samples").  OFF blocks have that MAC's readings removed.
    """
    check_positive_int(period, "period")
    rng = as_rng(rng)
    records = list(records)
    if not records:
        return []
    chain = OnOffMarkov(p, q)
    target_macs = list(macs) if macs is not None else sorted(unique_macs(records))
    blocks = (len(records) + period - 1) // period
    off_by_block: list[set[str]] = [set() for _ in range(blocks)]
    for mac in target_macs:
        states = chain.simulate(blocks, rng=rng)
        for block, on in enumerate(states):
            if not on:
                off_by_block[block].add(mac)
    out = []
    for i, record in enumerate(records):
        off = off_by_block[i // period]
        out.append(record.without(off) if off else record)
    return out


def markov_entropy_rate(p: float, q: float) -> float:
    """Entropy rate (bits/step) of the two-state chain — the quantity the
    paper invokes to explain the Fig. 12 dip near (0.5, 0.5)."""
    import math

    check_probability(p, "p")
    check_probability(q, "q")

    def h(x: float) -> float:
        if x <= 0.0 or x >= 1.0:
            return 0.0
        return -x * math.log2(x) - (1 - x) * math.log2(1 - x)

    if p + q == 0:
        return 0.0
    pi_on = q / (p + q)
    return pi_on * h(p) + (1 - pi_on) * h(q)
