"""Scanner: turns device poses into SignalRecords through the RF model.

One ``scan`` is one sensing event (~1 Hz in the paper): every radio in
the environment is sampled through the propagation model, the device's
sensitivity/soft-detection model decides which beacons survive, and the
result is a variable-length MAC→RSS record.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.records import SignalRecord
from repro.rf.device import Device
from repro.rf.environment import Environment
from repro.rf.trajectory import TimedPosition
from repro.utils.rng import as_rng

__all__ = ["Scanner"]


class Scanner:
    """Simulated RF scanner bound to an environment and a device.

    ``crowd_penalty_db``/``extra_fading_db`` model busy hours (more
    bodies and interference: lower means, higher variance — Table III /
    Fig. 15(b)).
    """

    def __init__(self, environment: Environment, device: Device = Device(),
                 rng=None, crowd_penalty_db: float = 0.0,
                 extra_fading_db: float = 0.0, device_offset_db: float = 0.0):
        if crowd_penalty_db < 0 or extra_fading_db < 0:
            raise ValueError("crowd_penalty_db and extra_fading_db must be non-negative")
        self.environment = environment
        self.device = device
        self.rng = as_rng(rng)
        self.crowd_penalty_db = crowd_penalty_db
        self.extra_fading_db = extra_fading_db
        # Constant per-device RSS calibration offset: different phone
        # models report systematically different RSS for the same field
        # strength (crowdsourced corpora like UJIIndoorLoc mix many).
        self.device_offset_db = device_offset_db

    def scan(self, pose: TimedPosition) -> SignalRecord:
        """One sensing event at ``pose``."""
        readings: dict[str, float] = {}
        propagation = self.environment.propagation
        for ap in self.environment.aps:
            for radio in ap.radios:
                if not self.device.hears_band(radio.band):
                    continue
                rss = propagation.sample_rss(
                    radio.tx_power_dbm, radio.mac, radio.band,
                    ap.position, ap.floor, pose.position, pose.floor,
                    self.rng, crowd_penalty_db=self.crowd_penalty_db,
                    time_s=pose.time,
                )
                rss += self.device_offset_db
                if self.extra_fading_db > 0:
                    rss += float(self.rng.normal(0.0, self.extra_fading_db))
                if self.device.measurement_noise_db > 0:
                    rss += float(self.rng.normal(0.0, self.device.measurement_noise_db))
                if self.rng.random() < self.device.detection_probability(rss):
                    readings[radio.mac] = round(rss, 1)
        return SignalRecord(readings, timestamp=pose.time, position=(*pose.position, pose.floor))

    def scan_path(self, poses: Sequence[TimedPosition] | Iterable[TimedPosition]) -> list[SignalRecord]:
        """Scan every pose of a trajectory."""
        return [self.scan(pose) for pose in poses]
