"""Trajectory generators: where the device is at each scan instant.

The paper's protocol: for initial training the user "walks around the
inner perimeter of the house for 5–10 minutes"; for testing the user
moves freely inside or outside.  Scans fire at ~1 Hz, so a walking speed
of v m/s advances the position v metres between samples (Sec. VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.rf.geometry import Point, Polygon, distance
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["TimedPosition", "perimeter_walk", "random_waypoint_walk", "linear_walk"]


@dataclass(frozen=True)
class TimedPosition:
    """Device pose at one scan instant."""

    position: Point
    floor: int
    time: float


def _walk_path(points: list[Point], speed: float, sample_period: float,
               floor: int, start_time: float) -> list[TimedPosition]:
    """Sample a piecewise-linear path at fixed time intervals."""
    out: list[TimedPosition] = []
    if not points:
        return out
    t = start_time
    out.append(TimedPosition(points[0], floor, t))
    step = speed * sample_period
    leftover = 0.0
    for a, b in zip(points[:-1], points[1:]):
        seg_len = distance(a, b)
        if seg_len == 0:
            continue
        travelled = step - leftover if leftover else step
        while travelled <= seg_len:
            frac = travelled / seg_len
            t += sample_period
            out.append(TimedPosition((a[0] + frac * (b[0] - a[0]),
                                      a[1] + frac * (b[1] - a[1])), floor, t))
            travelled += step
        leftover = travelled - seg_len
    return out


def perimeter_walk(region: Polygon, speed: float = 0.8, laps: int = 2,
                   inset: float = 0.5, sample_period: float = 1.0,
                   floor: int = 0, start_time: float = 0.0) -> list[TimedPosition]:
    """Walk the inner perimeter of ``region`` (the training protocol).

    ``laps`` full circuits at ``speed`` m/s, sampled every
    ``sample_period`` seconds, along the polygon shrunk inward by
    ``inset`` metres.
    """
    check_positive(speed, "speed")
    check_positive(laps, "laps")
    ring = region.shrunk(inset).vertices
    path = []
    for _ in range(laps):
        path.extend(ring)
    path.append(ring[0])
    return _walk_path(path, speed, sample_period, floor, start_time)


def random_waypoint_walk(region: Polygon, duration: float, speed: float = 0.8,
                         sample_period: float = 1.0, floor: int = 0,
                         start_time: float = 0.0, rng=None,
                         pause_probability: float = 0.2,
                         pause_duration: float = 5.0) -> list[TimedPosition]:
    """Random-waypoint mobility inside ``region`` for ``duration`` seconds.

    The device walks straight to a uniformly sampled target, occasionally
    pausing (a user sitting still), until the time budget is exhausted.
    """
    check_positive(duration, "duration")
    check_positive(speed, "speed")
    rng = as_rng(rng)
    out: list[TimedPosition] = []
    t = start_time
    current = region.sample_point(rng)
    end = start_time + duration
    out.append(TimedPosition(current, floor, t))
    while t < end:
        if rng.random() < pause_probability:
            pause_end = min(t + pause_duration, end)
            while t + sample_period <= pause_end:
                t += sample_period
                out.append(TimedPosition(current, floor, t))
        target = region.sample_point(rng)
        leg = _walk_path([current, target], speed, sample_period, floor, t)
        for pose in leg[1:]:
            if pose.time > end:
                break
            out.append(pose)
            t = pose.time
        current = out[-1].position
        if len(leg) <= 1:  # degenerate leg; force time forward
            t += sample_period
            out.append(TimedPosition(current, floor, t))
    return out


def linear_walk(start: Point, end: Point, speed: float = 0.8,
                sample_period: float = 1.0, floor: int = 0,
                start_time: float = 0.0) -> list[TimedPosition]:
    """A straight walk between two points (e.g. down the corridor)."""
    check_positive(speed, "speed")
    return _walk_path([tuple(start), tuple(end)], speed, sample_period, floor, start_time)
