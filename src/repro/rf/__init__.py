"""RF measurement substrate: floorplans, propagation, devices, trajectories.

This package substitutes for the paper's physical data collection
(Android phones carried through real homes): it synthesises ambient-AP
scan records through an indoor propagation model with walls, floors,
frozen spatial shadowing and temporal fading.
"""

from repro.rf.ap import AccessPoint, Radio, make_mac
from repro.rf.device import Device
from repro.rf.dynamics import (
    APChurn,
    ChurnShock,
    DeviceGainDrift,
    DynamicsTimeline,
    EpochWorld,
    MacRandomization,
    TransientHotspots,
    TxPowerDrift,
    build_schedule,
    home_ap_ids,
)
from repro.rf.environment import Environment
from repro.rf.geometry import Point, Polygon, Rect, Segment, distance, segments_intersect
from repro.rf.markov import OnOffMarkov, apply_ap_onoff, markov_entropy_rate
from repro.rf.materials import BRICK, CONCRETE, DRYWALL, FLOOR_SLAB, GLASS, Material, WOOD
from repro.rf.propagation import BandParams, PropagationConfig, PropagationModel, Wall
from repro.rf.scanner import Scanner
from repro.rf.scenarios import SiteScenario, home_scenario, lab_scenario, multi_floor_building
from repro.rf.trajectory import TimedPosition, linear_walk, perimeter_walk, random_waypoint_walk

__all__ = [
    "APChurn",
    "AccessPoint",
    "BandParams",
    "BRICK",
    "CONCRETE",
    "ChurnShock",
    "Device",
    "DeviceGainDrift",
    "DRYWALL",
    "DynamicsTimeline",
    "Environment",
    "EpochWorld",
    "MacRandomization",
    "TransientHotspots",
    "TxPowerDrift",
    "build_schedule",
    "FLOOR_SLAB",
    "GLASS",
    "Material",
    "OnOffMarkov",
    "Point",
    "Polygon",
    "PropagationConfig",
    "PropagationModel",
    "Radio",
    "Rect",
    "Scanner",
    "Segment",
    "SiteScenario",
    "TimedPosition",
    "WOOD",
    "Wall",
    "apply_ap_onoff",
    "distance",
    "home_ap_ids",
    "home_scenario",
    "lab_scenario",
    "linear_walk",
    "make_mac",
    "markov_entropy_rate",
    "multi_floor_building",
    "perimeter_walk",
    "random_waypoint_walk",
    "segments_intersect",
]
