"""2-D geometry primitives for floorplans and radio paths.

Everything works on plain ``(x, y)`` tuples in metres.  The two
operations propagation needs are *point-in-polygon* (is the device
inside the geofence?) and *segment–segment intersection counting* (how
many walls does the AP→device ray cross?).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Point", "Segment", "Polygon", "Rect", "segments_intersect", "distance"]

Point = tuple  # (x, y)

_EPS = 1e-9


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


@dataclass(frozen=True)
class Segment:
    """A line segment between two points."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        return distance(self.a, self.b)

    def midpoint(self) -> Point:
        return ((self.a[0] + self.b[0]) / 2.0, (self.a[1] + self.b[1]) / 2.0)

    def point_at(self, t: float) -> Point:
        """Linear interpolation; t=0 -> a, t=1 -> b."""
        return (self.a[0] + t * (self.b[0] - self.a[0]),
                self.a[1] + t * (self.b[1] - self.a[1]))


def _orient(p: Point, q: Point, r: Point) -> float:
    """Signed area orientation of the triple (p, q, r)."""
    return (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])


def _on_segment(p: Point, q: Point, r: Point) -> bool:
    """Is r on segment pq (assuming collinearity)?"""
    return (min(p[0], q[0]) - _EPS <= r[0] <= max(p[0], q[0]) + _EPS
            and min(p[1], q[1]) - _EPS <= r[1] <= max(p[1], q[1]) + _EPS)


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """Whether two closed segments share at least one point."""
    d1 = _orient(s2.a, s2.b, s1.a)
    d2 = _orient(s2.a, s2.b, s1.b)
    d3 = _orient(s1.a, s1.b, s2.a)
    d4 = _orient(s1.a, s1.b, s2.b)
    if ((d1 > _EPS and d2 < -_EPS) or (d1 < -_EPS and d2 > _EPS)) and \
       ((d3 > _EPS and d4 < -_EPS) or (d3 < -_EPS and d4 > _EPS)):
        return True
    if abs(d1) <= _EPS and _on_segment(s2.a, s2.b, s1.a):
        return True
    if abs(d2) <= _EPS and _on_segment(s2.a, s2.b, s1.b):
        return True
    if abs(d3) <= _EPS and _on_segment(s1.a, s1.b, s2.a):
        return True
    if abs(d4) <= _EPS and _on_segment(s1.a, s1.b, s2.b):
        return True
    return False


class Polygon:
    """Simple (non-self-intersecting) polygon given as a vertex ring."""

    def __init__(self, vertices: Sequence[Point]):
        vertices = [tuple(map(float, v)) for v in vertices]
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        self.vertices: list[Point] = vertices

    def __len__(self) -> int:
        return len(self.vertices)

    def edges(self) -> list[Segment]:
        n = len(self.vertices)
        return [Segment(self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n)]

    @property
    def area(self) -> float:
        """Absolute area via the shoelace formula."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    @property
    def perimeter(self) -> float:
        return sum(edge.length for edge in self.edges())

    def centroid(self) -> Point:
        """Area centroid (falls back to vertex mean for degenerate area)."""
        total = 0.0
        cx = cy = 0.0
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            cross = x1 * y2 - x2 * y1
            total += cross
            cx += (x1 + x2) * cross
            cy += (y1 + y2) * cross
        if abs(total) < _EPS:
            xs = [v[0] for v in self.vertices]
            ys = [v[1] for v in self.vertices]
            return (sum(xs) / len(xs), sum(ys) / len(ys))
        return (cx / (3.0 * total), cy / (3.0 * total))

    def contains(self, point: Point) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        x, y = point
        inside = False
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            # Boundary check against this edge.
            if abs(_orient((x1, y1), (x2, y2), (x, y))) <= 1e-7 and \
               _on_segment((x1, y1), (x2, y2), (x, y)):
                return True
            if (y1 > y) != (y2 > y):
                x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
                if x < x_cross:
                    inside = not inside
        return inside

    def shrunk(self, inset: float) -> "Polygon":
        """Approximate inward offset: scale vertices toward the centroid.

        Exact for regular shapes; adequate for walk-path generation on
        the convex-ish rooms the scenarios use.
        """
        if inset <= 0:
            return Polygon(self.vertices)
        cx, cy = self.centroid()
        # Scale so the mean vertex distance shrinks by `inset`.
        mean_radius = sum(distance((cx, cy), v) for v in self.vertices) / len(self.vertices)
        if mean_radius <= inset:
            raise ValueError(f"inset {inset} exceeds polygon radius {mean_radius:.2f}")
        factor = (mean_radius - inset) / mean_radius
        return Polygon([(cx + (x - cx) * factor, cy + (y - cy) * factor)
                        for x, y in self.vertices])

    def bounding_box(self) -> tuple[float, float, float, float]:
        xs = [v[0] for v in self.vertices]
        ys = [v[1] for v in self.vertices]
        return min(xs), min(ys), max(xs), max(ys)

    def sample_point(self, rng) -> Point:
        """Rejection-sample a uniform interior point."""
        x0, y0, x1, y1 = self.bounding_box()
        for _ in range(10_000):
            p = (rng.uniform(x0, x1), rng.uniform(y0, y1))
            if self.contains(p):
                return p
        raise RuntimeError("failed to sample a point inside the polygon")


class Rect(Polygon):
    """Axis-aligned rectangle, the workhorse of the scenario floorplans."""

    def __init__(self, x0: float, y0: float, x1: float, y1: float):
        if x1 <= x0 or y1 <= y0:
            raise ValueError(f"degenerate rectangle ({x0},{y0})..({x1},{y1})")
        self.x0, self.y0, self.x1, self.y1 = float(x0), float(y0), float(x1), float(y1)
        super().__init__([(x0, y0), (x1, y0), (x1, y1), (x0, y1)])

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    def contains(self, point: Point) -> bool:
        x, y = point
        return self.x0 - _EPS <= x <= self.x1 + _EPS and self.y0 - _EPS <= y <= self.y1 + _EPS

    def shrunk(self, inset: float) -> "Rect":
        if 2 * inset >= min(self.width, self.height):
            raise ValueError(f"inset {inset} too large for rectangle {self.width}x{self.height}")
        return Rect(self.x0 + inset, self.y0 + inset, self.x1 - inset, self.y1 - inset)

    def sample_point(self, rng) -> Point:
        return (rng.uniform(self.x0, self.x1), rng.uniform(self.y0, self.y1))
