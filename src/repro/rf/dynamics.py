"""Temporal dynamics: seed-deterministic world mutation over simulated days.

The paper's central robustness claims are *temporal*: MAC addresses
churn as neighbours replace routers (Fig. 9/10), transient hotspot APs
appear at busy hours (Fig. 15, Table III), and APs blink in and out
under Markov on-off dynamics (Fig. 12).  The scenario builders in
:mod:`repro.rf.scenarios` freeze a world at build time; this module
evolves one.

A *mutation schedule* is a small frozen dataclass describing one kind
of change per epoch (an epoch is a simulated day).  Schedules compose
inside a :class:`DynamicsTimeline`, which applies them in order with
per-``(epoch, schedule)`` RNG streams derived from a single seed, and
yields an immutable :class:`EpochWorld` (environment + device-gain
offset + event log) per epoch.  Equal seeds reproduce bit-identical
timelines; the timeline is lazy and cached, so ``world(5)`` computes
epochs 1–5 once and random access stays deterministic.

Schedules also have a declarative form (``SCHEDULES`` +
:func:`build_schedule`) so a drift workload can travel as JSON inside a
:class:`~repro.pipeline.spec.PipelineSpec` drift block.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.rf.ap import AccessPoint
from repro.rf.environment import Environment
from repro.rf.scenarios import SiteScenario

__all__ = [
    "APChurn",
    "ChurnShock",
    "DeviceGainDrift",
    "DynamicsTimeline",
    "EpochWorld",
    "MacRandomization",
    "MarkovOnOff",
    "MutableWorld",
    "SCHEDULES",
    "TransientHotspots",
    "TxPowerDrift",
    "build_schedule",
    "home_ap_ids",
    "schedule_to_spec",
]


def home_ap_ids(scenario: SiteScenario) -> tuple[int, ...]:
    """ap_ids of APs inside the geofence — the tenant's own equipment.

    The natural ``protect`` argument for churn schedules: neighbours
    replace *their* routers behind the user's back, but the user's own
    AP only changes when they act, which is a different experiment.
    """
    environment = scenario.environment
    return tuple(ap.ap_id for ap in environment.aps
                 if environment.is_inside(ap.position, ap.floor))


# ----------------------------------------------------------------------
# Mutable working state (owned by the timeline, mutated by schedules)
# ----------------------------------------------------------------------
@dataclass
class MutableWorld:
    """The evolving world a timeline threads through its schedules.

    ``aps`` is the persistent AP population; ``transients`` live for one
    epoch only and are cleared before each epoch's mutations run.
    ``next_ap_id`` is monotone, so a fresh AP can never resurrect a
    retired MAC.
    """

    scenario: SiteScenario
    aps: list[AccessPoint]
    next_ap_id: int
    transients: list[AccessPoint] = field(default_factory=list)
    device_gain_db: float = 0.0
    tx_origin: dict[int, float] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)

    def fresh_ap(self, like: AccessPoint, tx_power_dbm: float | None = None) -> AccessPoint:
        """A brand-new AP (fresh id, fresh MACs) at ``like``'s position."""
        ap_id = self.next_ap_id
        self.next_ap_id += 1
        tx = tx_power_dbm if tx_power_dbm is not None else like.radios[0].tx_power_dbm
        return AccessPoint.create(ap_id, like.position, floor=like.floor,
                                  bands=tuple(radio.band for radio in like.radios),
                                  tx_power_dbm=tx)


def _check_fraction(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class APChurn:
    """Gradual AP turnover: each epoch, each AP retires w.p. ``rate``.

    ``replace=True`` models router replacement (a new device with fresh
    MACs at the same spot and power — the Fig. 9/10 mechanism);
    ``replace=False`` models pure disappearance, which run over many
    epochs reproduces the paper's MAC-removal ablation as a *drift*
    rather than a one-shot cut.  ``protect`` lists ap_ids exempt from
    churn (e.g. the home's own AP).
    """

    rate: float = 0.05
    replace: bool = True
    protect: tuple[int, ...] = ()

    def __post_init__(self):
        _check_fraction(self.rate, "rate")
        object.__setattr__(self, "protect", tuple(int(i) for i in self.protect))

    def mutate(self, world: MutableWorld, epoch: int, rng: np.random.Generator,
               store: dict) -> None:
        protected = set(self.protect)
        survivors: list[AccessPoint] = []
        churned: list[AccessPoint] = []
        for ap in world.aps:
            if ap.ap_id not in protected and rng.random() < self.rate:
                churned.append(ap)
            else:
                survivors.append(ap)
        if not self.replace and not survivors and churned:
            # Never empty the world outright: the last AP survives.
            survivors.append(churned.pop())
        for ap in churned:
            if self.replace:
                survivors.append(world.fresh_ap(ap))
        if churned:
            verb = "replaced" if self.replace else "retired"
            world.events.append(f"ap-churn: {verb} {len(churned)} AP(s)")
        world.aps = survivors


@dataclass(frozen=True)
class ChurnShock:
    """A one-shot mass churn at exactly ``epoch`` (the recovery probe).

    Retires ``fraction`` of the unprotected APs at once — a building
    re-fit, an ISP swap-out campaign — optionally replacing them with
    fresh-MAC units at the same positions.
    """

    epoch: int
    fraction: float = 0.5
    replace: bool = True
    protect: tuple[int, ...] = ()

    def __post_init__(self):
        if self.epoch < 1:
            raise ValueError(f"shock epoch must be >= 1, got {self.epoch}")
        _check_fraction(self.fraction, "fraction")
        object.__setattr__(self, "protect", tuple(int(i) for i in self.protect))

    def mutate(self, world: MutableWorld, epoch: int, rng: np.random.Generator,
               store: dict) -> None:
        if epoch != self.epoch:
            return
        protected = set(self.protect)
        eligible = [ap.ap_id for ap in world.aps if ap.ap_id not in protected]
        count = int(round(self.fraction * len(eligible)))
        if not self.replace:
            count = min(count, max(len(world.aps) - 1, 0))
        if count == 0:
            return
        doomed = set(int(i) for i in rng.choice(eligible, size=count, replace=False))
        survivors = [ap for ap in world.aps if ap.ap_id not in doomed]
        if self.replace:
            survivors.extend(world.fresh_ap(ap) for ap in world.aps
                             if ap.ap_id in doomed)
        verb = "replaced" if self.replace else "retired"
        world.events.append(f"churn-shock: {verb} {count} AP(s)")
        world.aps = survivors


@dataclass(frozen=True)
class TxPowerDrift:
    """Per-AP transmit-power random walk, clamped around each AP's origin.

    Firmware updates, thermal ageing and neighbours fiddling with
    settings slowly move effective EIRP; the clamp keeps the walk within
    ``max_drift_db`` of the power the AP first appeared with.
    """

    sigma_db: float = 0.4
    max_drift_db: float = 5.0

    def __post_init__(self):
        if self.sigma_db < 0 or self.max_drift_db < 0:
            raise ValueError("sigma_db and max_drift_db must be non-negative")

    def mutate(self, world: MutableWorld, epoch: int, rng: np.random.Generator,
               store: dict) -> None:
        drifted = []
        for ap in world.aps:
            origin = world.tx_origin.setdefault(ap.ap_id, ap.radios[0].tx_power_dbm)
            step = float(rng.normal(0.0, self.sigma_db)) if self.sigma_db else 0.0
            tx = float(np.clip(ap.radios[0].tx_power_dbm + step,
                               origin - self.max_drift_db, origin + self.max_drift_db))
            radios = tuple(dataclasses.replace(radio, tx_power_dbm=tx)
                           for radio in ap.radios)
            drifted.append(dataclasses.replace(ap, radios=radios))
        world.aps = drifted
        if drifted and self.sigma_db:
            world.events.append(f"tx-drift: nudged {len(drifted)} AP(s)")


@dataclass(frozen=True)
class MacRandomization:
    """A cohort of APs rotates to fresh MACs every ``period`` epochs.

    Models privacy-driven MAC randomization (and soft-AP hotspots that
    re-randomize per session): the radio stays put, the identifier the
    geofencing model keyed on disappears.
    """

    cohort_fraction: float = 0.2
    period: int = 2

    def __post_init__(self):
        _check_fraction(self.cohort_fraction, "cohort_fraction")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")

    def prepare(self, world: MutableWorld, rng: np.random.Generator,
                store: dict) -> None:
        ids = [ap.ap_id for ap in world.aps]
        count = int(round(self.cohort_fraction * len(ids)))
        cohort = rng.choice(ids, size=count, replace=False) if count else []
        store["cohort"] = set(int(i) for i in cohort)

    def mutate(self, world: MutableWorld, epoch: int, rng: np.random.Generator,
               store: dict) -> None:
        if epoch % self.period != 0:
            return
        cohort: set[int] = store.setdefault("cohort", set())
        if not cohort:
            return
        rotated = 0
        out: list[AccessPoint] = []
        for ap in world.aps:
            if ap.ap_id in cohort:
                fresh = world.fresh_ap(ap)
                cohort.discard(ap.ap_id)
                cohort.add(fresh.ap_id)
                out.append(fresh)
                rotated += 1
            else:
                out.append(ap)
        world.aps = out
        if rotated:
            world.events.append(f"mac-randomization: rotated {rotated} AP(s)")


@dataclass(frozen=True)
class MarkovOnOff:
    """Fig. 11/12's two-state AP ON-OFF chain, lifted to epoch dynamics.

    Each persistent AP follows an independent Markov chain with one
    transition per epoch: ON→OFF with probability ``p``, OFF→ON with
    probability ``q`` (the chain of :mod:`repro.rf.markov`, which applies
    the same process to an already-generated *record stream*; here the
    APs blink out of the *world* instead, so the drift harness scans a
    physically consistent environment).  OFF APs vanish from the epoch's
    environment and return — same device, same MACs — when the chain
    flips back, unlike :class:`APChurn` retirement.  ``protect`` pins
    ap_ids permanently ON.  While OFF, an AP is invisible to the other
    schedules (a powered-down router does not take firmware churn).
    """

    p: float = 0.2
    q: float = 0.5
    protect: tuple[int, ...] = ()

    def __post_init__(self):
        _check_fraction(self.p, "p")
        _check_fraction(self.q, "q")
        object.__setattr__(self, "protect", tuple(int(i) for i in self.protect))

    def stationary_on_probability(self) -> float:
        """Long-run fraction of epochs an unprotected AP spends ON."""
        if self.p + self.q == 0:
            return 1.0
        return self.q / (self.p + self.q)

    def mutate(self, world: MutableWorld, epoch: int, rng: np.random.Generator,
               store: dict) -> None:
        hidden: dict[int, AccessPoint] = store.setdefault("hidden", {})
        states: dict[int, bool] = store.setdefault("states", {})
        pool = list(world.aps) + list(hidden.values())
        hidden.clear()
        # Chains no longer backed by a live AP (e.g. churned away while
        # hidden) are dropped so the store stays bounded.
        live = {ap.ap_id for ap in pool}
        for ap_id in [i for i in states if i not in live]:
            del states[ap_id]
        protected = set(self.protect)
        visible: list[AccessPoint] = []
        turned_off = turned_on = 0
        # Sorted iteration pins the per-AP RNG draw order regardless of
        # how earlier schedules shuffled the population.
        for ap in sorted(pool, key=lambda a: a.ap_id):
            was_on = states.get(ap.ap_id, True)
            if ap.ap_id in protected:
                now_on = True
            elif was_on:
                now_on = rng.random() >= self.p
            else:
                now_on = rng.random() < self.q
            states[ap.ap_id] = now_on
            if now_on:
                visible.append(ap)
                turned_on += not was_on
            else:
                hidden[ap.ap_id] = ap
                turned_off += was_on
        if not visible and hidden:
            # Never empty the world outright: deterministically revive one.
            ap = hidden.pop(max(hidden))
            states[ap.ap_id] = True
            visible.append(ap)
            turned_on += 1
        world.aps = visible
        if turned_off or turned_on:
            world.events.append(f"markov-onoff: {turned_off} AP(s) off, "
                                f"{turned_on} back on")


@dataclass(frozen=True)
class TransientHotspots:
    """Short-lived low-power hotspots (phones) present for one epoch.

    Each epoch, 0..``max_active`` hotspots appear at fresh positions in
    the scenario's outside (or inside) regions with never-seen MACs —
    the Table III busy-hour MAC-count swings.  They vanish at the next
    epoch boundary.
    """

    max_active: int = 3
    tx_power_dbm: float = 10.0
    region: str = "outside"

    def __post_init__(self):
        if self.max_active < 0:
            raise ValueError(f"max_active must be >= 0, got {self.max_active}")
        if self.region not in ("outside", "inside"):
            raise ValueError(f"region must be 'outside' or 'inside', got {self.region!r}")

    def mutate(self, world: MutableWorld, epoch: int, rng: np.random.Generator,
               store: dict) -> None:
        pool = (world.scenario.outside_regions if self.region == "outside"
                else world.scenario.inside_regions)
        if not pool or self.max_active == 0:
            return
        count = int(rng.integers(0, self.max_active + 1))
        for _ in range(count):
            polygon, floor = pool[int(rng.integers(0, len(pool)))]
            position = polygon.sample_point(rng)
            ap_id = world.next_ap_id
            world.next_ap_id += 1
            world.transients.append(AccessPoint.create(
                ap_id, position, floor=floor, bands=("2.4",),
                tx_power_dbm=self.tx_power_dbm))
        if count:
            world.events.append(f"transient-hotspots: {count} active")


@dataclass(frozen=True)
class DeviceGainDrift:
    """Random walk on the device's RSS calibration offset.

    Case swaps, battery state and OS radio calibration shift reported
    RSS by a few dB over weeks; the walk is clamped to ``max_gain_db``.
    """

    sigma_db: float = 0.3
    max_gain_db: float = 3.0

    def __post_init__(self):
        if self.sigma_db < 0 or self.max_gain_db < 0:
            raise ValueError("sigma_db and max_gain_db must be non-negative")

    def mutate(self, world: MutableWorld, epoch: int, rng: np.random.Generator,
               store: dict) -> None:
        step = float(rng.normal(0.0, self.sigma_db)) if self.sigma_db else 0.0
        world.device_gain_db = float(np.clip(world.device_gain_db + step,
                                             -self.max_gain_db, self.max_gain_db))


# ----------------------------------------------------------------------
# Declarative registry (for PipelineSpec drift blocks / CLI / JSON)
# ----------------------------------------------------------------------
SCHEDULES = {
    "ap-churn": APChurn,
    "churn-shock": ChurnShock,
    "tx-power-drift": TxPowerDrift,
    "mac-randomization": MacRandomization,
    "markov-onoff": MarkovOnOff,
    "transient-hotspots": TransientHotspots,
    "device-gain-drift": DeviceGainDrift,
}

_SCHEDULE_NAMES = {cls: name for name, cls in SCHEDULES.items()}


def build_schedule(name: str, params: dict | None = None):
    """Instantiate a registered schedule by name, validating parameters."""
    cls = SCHEDULES.get(name)
    if cls is None:
        raise ValueError(f"unknown dynamics schedule {name!r}; known: "
                         f"{', '.join(sorted(SCHEDULES))}")
    params = dict(params or {})
    accepted = {f.name for f in dataclasses.fields(cls)}
    unknown = set(params) - accepted
    if unknown:
        raise ValueError(f"schedule {name!r} does not accept parameter(s) "
                         f"{', '.join(sorted(repr(p) for p in unknown))}; accepted: "
                         f"{', '.join(sorted(accepted))}")
    # Tuples arrive as JSON lists; the dataclasses normalise int tuples.
    for key in ("protect",):
        if key in params and isinstance(params[key], list):
            params[key] = tuple(params[key])
    try:
        return cls(**params)
    except TypeError as error:
        # Missing required parameters (e.g. churn-shock without "epoch")
        # are an operator input problem, not a programming error.
        raise ValueError(f"schedule {name!r}: {error}") from error


def schedule_to_spec(schedule) -> tuple[str, dict]:
    """``(name, params)`` of a schedule instance, JSON-ready."""
    name = _SCHEDULE_NAMES.get(type(schedule))
    if name is None:
        raise ValueError(f"{type(schedule).__name__} is not a registered schedule")
    params = dataclasses.asdict(schedule)
    return name, {k: (list(v) if isinstance(v, tuple) else v) for k, v in params.items()}


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EpochWorld:
    """One epoch's immutable snapshot: environment + device drift + log."""

    epoch: int
    environment: Environment
    device_gain_db: float = 0.0
    events: tuple[str, ...] = ()

    @property
    def macs(self) -> frozenset[str]:
        return frozenset(self.environment.all_macs)


class DynamicsTimeline:
    """Evolves a :class:`SiteScenario` over epochs under some schedules.

    Epoch 0 is the pristine built world; each later epoch applies every
    schedule in order with an RNG stream derived from
    ``SeedSequence(seed, spawn_key=(epoch, index))``, so a timeline is a
    pure function of ``(scenario, schedules, num_epochs, seed)``.
    Worlds are computed sequentially (churn is cumulative) and cached.
    """

    def __init__(self, scenario: SiteScenario, schedules: Sequence,
                 num_epochs: int, seed: int = 0):
        if num_epochs < 1:
            raise ValueError(f"num_epochs must be >= 1, got {num_epochs}")
        for schedule in schedules:
            if not hasattr(schedule, "mutate"):
                raise TypeError(f"{type(schedule).__name__} is not a mutation "
                                "schedule (no mutate method)")
        self.scenario = scenario
        self.schedules = tuple(schedules)
        self.num_epochs = int(num_epochs)
        self.seed = int(seed)
        base = scenario.environment
        self._state = MutableWorld(
            scenario=scenario,
            aps=list(base.aps),
            next_ap_id=max(ap.ap_id for ap in base.aps) + 1,
        )
        self._stores: list[dict] = [{} for _ in self.schedules]
        for index, schedule in enumerate(self.schedules):
            if hasattr(schedule, "prepare"):
                schedule.prepare(self._state, self._rng(0, index), self._stores[index])
        self._worlds: list[EpochWorld] = [EpochWorld(0, base)]

    def _rng(self, epoch: int, index: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(epoch, index)))

    def _advance(self) -> None:
        epoch = len(self._worlds)
        state = self._state
        state.transients = []
        state.events = []
        for index, schedule in enumerate(self.schedules):
            schedule.mutate(state, epoch, self._rng(epoch, index), self._stores[index])
        aps = list(state.aps) + list(state.transients)
        if not aps:
            raise RuntimeError(f"dynamics emptied the world at epoch {epoch}; "
                               "protect at least one AP or lower the churn")
        base = self.scenario.environment
        environment = Environment(walls=base.walls, aps=aps,
                                  geofence=base.geofence,
                                  geofence_floors=base.geofence_floors,
                                  propagation_config=base.propagation_config)
        self._worlds.append(EpochWorld(epoch, environment,
                                       device_gain_db=state.device_gain_db,
                                       events=tuple(state.events)))

    def world(self, epoch: int) -> EpochWorld:
        """The (cached) snapshot of one epoch; computes predecessors lazily."""
        if not 0 <= epoch < self.num_epochs:
            raise IndexError(f"epoch {epoch} outside 0..{self.num_epochs - 1}")
        while len(self._worlds) <= epoch:
            self._advance()
        return self._worlds[epoch]

    def environment(self, epoch: int) -> Environment:
        return self.world(epoch).environment

    def __len__(self) -> int:
        return self.num_epochs

    def __iter__(self) -> Iterator[EpochWorld]:
        return (self.world(epoch) for epoch in range(self.num_epochs))
