"""``python -m repro`` — spec-driven train / eval / serve entry point.

The CLI is a thin shell over the declarative pipeline API: every
subcommand consumes or produces :class:`~repro.pipeline.spec.PipelineSpec`
JSON, so anything scriptable here is also scriptable as a library call.

Subcommands
-----------
``components``
    List every registered embedder / detector / model.
``spec``
    Emit the spec JSON of a named paper arm (a starting point to edit).
``train``
    Build a pipeline from a spec file (or arm name), fit it on a JSONL
    record stream or a synthetic user world, and save a checkpoint.
``eval``
    Run paper arms through the streaming evaluation harness on a
    synthetic user world; print (and optionally dump as JSON) metrics.
``serve``
    Replay a JSONL event stream through a multi-tenant fleet rooted at
    a checkpoint registry; print one decision JSON per line.
``runtime`` (alias ``serve-daemon``)
    The same replay through the sharded :class:`ServingRuntime` daemon:
    tenants hash-partitioned across N shards, a background maintenance
    worker executing the given :class:`MaintenancePolicy` (coordinated
    refresh, escalation, flush, idle eviction) off the observe path,
    and incremental (delta) checkpoint write-backs.
``cluster``
    The replay through the multi-process cluster: a router
    hash-partitions tenants across N worker processes (each a serial
    runtime over its slice of the registry), optionally delta-shipping
    every committed checkpoint write to a warm standby registry
    (``--standby``) that ``--promote`` turns into a serving primary at
    the end.  ``--quick`` is self-contained (synthetic world, temp
    registry) for smoke tests.
``obs render``
    Pretty-print a metrics snapshot (the JSONL trail ``runtime
    --metrics-out`` appends, or any ``runtime.metrics()`` JSON) as
    latency/counter/health tables, Prometheus text exposition, or
    canonical JSON.
``maintain``
    Control-plane maintenance over a checkpoint registry: coordinated
    refresh (embedding-cache rebuild + detector refit on each tenant's
    persisted recent-inlier reservoir) or full re-provision, per tenant,
    written back atomically.
``drift``
    Evolve a synthetic world over simulated days (AP churn, a one-shot
    churn shock, power/device drift) and replay the multi-epoch stream
    through an arm online — and through a frozen static snapshot — to
    get per-epoch AUC/FPR/FNR trajectories and time-to-recovery.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Spec-driven geofencing pipelines: train, evaluate, serve.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("components", help="list registered pipeline components")

    p = sub.add_parser("spec", help="print the PipelineSpec JSON of a paper arm")
    p.add_argument("--arm", required=True, help="paper arm name (see `eval --list`)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("-o", "--out", help="write to this file instead of stdout")

    p = sub.add_parser("train", help="fit a spec'd pipeline and checkpoint it")
    source = p.add_mutually_exclusive_group(required=True)
    source.add_argument("--spec", help="PipelineSpec JSON file")
    source.add_argument("--arm", help="paper arm name instead of a spec file")
    data = p.add_mutually_exclusive_group(required=True)
    data.add_argument("--records", help="JSONL training records (repro.core.io format)")
    data.add_argument("--user", type=int, help="synthetic Table-II user world id")
    p.add_argument("--out", help="checkpoint directory to write")
    p.add_argument("--registry", help="tenant registry root (needs --tenant)")
    p.add_argument("--tenant", help="tenant id inside --registry")
    p.add_argument("--seed", type=int, default=0, help="arm seed (with --arm)")
    p.add_argument("--dim", type=int, default=32, help="arm dimension (with --arm)")
    p.add_argument("--quick", action="store_true",
                   help="small synthetic world + fast hyper-parameters")

    p = sub.add_parser("eval", help="evaluate paper arms on a synthetic user world")
    p.add_argument("--arms", default="GEM",
                   help="comma-separated arm names, or 'all'")
    p.add_argument("--list", action="store_true", help="list arm names and exit")
    p.add_argument("--user", type=int, default=3, help="synthetic user world id")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--quick", action="store_true",
                   help="small synthetic world + fast hyper-parameters")
    p.add_argument("--json", dest="json_out", help="also write metrics to this JSON file")

    p = sub.add_parser("drift", help="streaming drift evaluation over a dynamic world")
    source = p.add_mutually_exclusive_group()
    source.add_argument("--arm", default="GEM", help="paper arm name (default GEM)")
    source.add_argument("--spec", help="PipelineSpec JSON file (its drift block, if "
                                       "present, defines the workload)")
    p.add_argument("--user", type=int, default=3, help="synthetic Table-II user world id")
    p.add_argument("--epochs", type=int, default=8, help="simulated days to evolve")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--churn", type=float, default=0.04,
                   help="per-epoch AP replacement probability")
    p.add_argument("--shock-epoch", type=int, default=None,
                   help="epoch of the one-shot churn shock (default: midpoint)")
    p.add_argument("--shock-fraction", type=float, default=0.3,
                   help="fraction of ambient APs replaced at the shock")
    p.add_argument("--sessions", type=int, default=4, help="test sessions per epoch")
    p.add_argument("--session-s", type=float, default=45.0, help="seconds per session")
    p.add_argument("--train-s", type=float, default=180.0, help="training walk seconds")
    p.add_argument("--no-baseline", action="store_true",
                   help="skip the frozen static-snapshot comparison run")
    p.add_argument("--fleet", action="store_true",
                   help="also replay through a GeofenceFleet tenant with forced "
                        "mid-stream evict/reload")
    p.add_argument("--maintain", type=int, metavar="N", default=0,
                   help="also replay through a fleet tenant whose controller "
                        "runs a coordinated refresh (cache rebuild + detector "
                        "refit on the inlier reservoir) every N observations")
    p.add_argument("--quick", action="store_true",
                   help="shrink the model's hyper-parameters (shorter GNN "
                        "training; the world and epochs are unchanged — "
                        "recovery is a data-volume effect). No effect with --spec")
    p.add_argument("--json", dest="json_out", help="also write trajectories to this JSON file")

    p = sub.add_parser("serve", help="replay a JSONL event stream through a fleet")
    p.add_argument("--registry", required=True, help="tenant registry root")
    p.add_argument("--events", required=True,
                   help='JSONL events: {"tenant": ..., "rss": {...}, "t": ...}')
    p.add_argument("--capacity", type=int, default=8)
    p.add_argument("-o", "--out", help="write decisions to this file instead of stdout")

    p = sub.add_parser("runtime", aliases=["serve-daemon"],
                       help="replay a JSONL event stream through the sharded "
                            "serving daemon (background maintenance)")
    p.add_argument("--registry", required=True, help="tenant registry root")
    p.add_argument("--events", required=True,
                   help='JSONL events: {"tenant": ..., "rss": {...}, "t": ...}')
    p.add_argument("--shards", type=int, default=2, help="fleet shards")
    p.add_argument("--capacity", type=int, default=8, help="LRU budget per shard")
    p.add_argument("--policy", help="MaintenancePolicy JSON file applied to every "
                                    "tenant (default: no maintenance)")
    p.add_argument("--interval", type=float, default=0.05,
                   help="background maintenance tick interval in seconds; "
                        "0 = serial mode (pump once at the end)")
    p.add_argument("--sweep-every", type=int, default=20,
                   help="run controller sweeps every N ticks")
    p.add_argument("--no-incremental", action="store_true",
                   help="write full checkpoints instead of deltas")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="append periodic runtime metrics snapshots (JSONL) "
                        "to this file while serving; render them afterwards "
                        "with `python -m repro obs render PATH`")
    p.add_argument("--metrics-interval", type=float, default=5.0, metavar="S",
                   help="seconds between metrics snapshots (with --metrics-out; "
                        "default 5)")
    p.add_argument("-o", "--out", help="write decisions to this file instead of stdout")

    p = sub.add_parser("cluster",
                       help="replay a JSONL event stream through the "
                            "multi-process router (optional warm standby)")
    p.add_argument("--registry", help="tenant registry root (omit with --quick "
                                      "for a temp registry)")
    p.add_argument("--events", help='JSONL events: {"tenant": ..., "rss": '
                                    '{...}, "t": ...} (generated with --quick)')
    p.add_argument("--workers", type=int, default=2, help="worker processes")
    p.add_argument("--capacity", type=int, default=8,
                   help="LRU budget per worker shard")
    p.add_argument("--worker-shards", type=int, default=1,
                   help="runtime shards inside each worker")
    p.add_argument("--policy", help="MaintenancePolicy JSON file applied to "
                                    "every tenant (default: no maintenance)")
    p.add_argument("--standby", metavar="DIR",
                   help="replicate committed checkpoint writes into this "
                        "standby registry root")
    p.add_argument("--promote", action="store_true",
                   help="after the replay, promote the standby to a serving "
                        "primary and report failover timing (needs --standby)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-request worker response timeout in seconds")
    p.add_argument("--no-incremental", action="store_true",
                   help="write full checkpoints instead of deltas")
    p.add_argument("--local", action="store_true",
                   help="in-process worker threads instead of subprocesses "
                        "(debugging; same protocol, no fork)")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="append merged cluster metrics snapshots (JSONL) to "
                        "this file: worker registries folded at the router, "
                        "every family also labeled per worker")
    p.add_argument("--metrics-interval", type=float, default=5.0, metavar="S",
                   help="seconds between cluster metrics snapshots (with "
                        "--metrics-out; default 5, the runtime daemon's "
                        "cadence)")
    p.add_argument("--health", action="store_true",
                   help="print the graded cluster health rollup (folded "
                        "probes + per-worker detail) after the replay")
    p.add_argument("--quick", action="store_true",
                   help="self-contained smoke run: tiny synthetic world, "
                        "temp registry, generated events")
    p.add_argument("-o", "--out", help="write decisions to this file instead "
                                       "of stdout")

    p = sub.add_parser("obs", help="observability utilities (metrics snapshots)")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    r = obs_sub.add_parser("render",
                           help="render a metrics snapshot (JSON, or JSONL as "
                                "written by --metrics-out) as a summary table "
                                "or Prometheus text exposition")
    r.add_argument("path", nargs="+",
                   help="metrics snapshot file: a JSON object, or JSONL "
                        "where the last line wins (see --line); with --diff, "
                        "one file (first line vs --line) or two files "
                        "(earlier, later)")
    r.add_argument("--format", choices=["summary", "prometheus", "json"],
                   default="summary",
                   help="summary: latency/counter/health tables (default); "
                        "prometheus: text exposition; json: canonical JSON")
    r.add_argument("--line", type=int, default=0, metavar="N",
                   help="1-based JSONL line to render; 0 or negative index "
                        "from the end (default: last line)")
    r.add_argument("--diff", action="store_true",
                   help="counter deltas and per-second rates between two "
                        "snapshots instead of absolute values (rates need "
                        "the 'at' timestamps --metrics-out records)")
    r.add_argument("-o", "--out", help="write to this file instead of stdout")

    p = sub.add_parser("maintain",
                       help="coordinated refresh / re-provision of registry tenants")
    p.add_argument("--registry", required=True, help="tenant registry root")
    p.add_argument("--tenants", default="all",
                   help="comma-separated tenant ids, or 'all'")
    p.add_argument("--action", choices=["refresh", "reprovision", "recover"],
                   default="refresh",
                   help="refresh: rebuild embedding caches + refit the detector "
                        "on the persisted recent-inlier reservoir (default); "
                        "reprovision: full refit from the reservoir; "
                        "recover: full refit from the persisted quarantine "
                        "buffer, re-anchoring the trained MAC universe — the "
                        "operator approval of a starvation-recovery proposal")
    p.add_argument("--max-fpr", type=float, default=0.5, metavar="RATE",
                   help="recover only: roll back (keep the old model) when the "
                        "recovered model rejects more than this fraction of "
                        "its own quarantine evidence (default 0.5)")
    p.add_argument("--dry-run", action="store_true",
                   help="report each tenant's arm, refresh capability, "
                        "reservoir and quarantine size without touching any "
                        "checkpoint")
    p.add_argument("--json", dest="json_out", help="also write the report to this JSON file")
    return parser


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _quick_gem_config():
    from repro.core.config import GEMConfig
    from repro.embedding.bisage import BiSAGEConfig
    return GEMConfig(bisage=BiSAGEConfig(dim=16, epochs=2))


def _arm_dim(name: str, dim: int, quick: bool) -> int:
    from repro.eval.algorithms import arm_accepts
    if quick and dim == 32 and arm_accepts(name, "dim"):
        return 16
    return dim


def _load_spec(args):
    from repro.eval.algorithms import arm_spec
    from repro.pipeline import PipelineSpec
    if args.spec:
        return PipelineSpec.from_json(Path(args.spec).read_text())
    gem_config = _quick_gem_config() if args.quick else None
    return arm_spec(args.arm, seed=args.seed,
                    dim=_arm_dim(args.arm, args.dim, args.quick),
                    gem_config=gem_config, strict=False)


def _training_records(args):
    from repro.core.io import load_records
    if args.records:
        return load_records(args.records)
    dataset = _user_dataset(args.user, quick=args.quick)
    return dataset.train


def _user_dataset(user_id: int, quick: bool):
    from repro.datasets import user_dataset
    if quick:
        return user_dataset(user_id, train_duration_s=120.0, test_sessions=3,
                            session_duration_s=40.0)
    return user_dataset(user_id)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_components(args) -> int:
    from repro.eval.reporting import format_table
    from repro.pipeline import known_components
    rows = [[e.kind, e.name, "yes" if e.supports_update else "no",
             "yes" if e.supports_state_dict else "no",
             "yes" if e.supports_refresh else "no",
             "yes" if e.supports_batch_score else "no", e.description]
            for e in known_components()]
    print(format_table(["kind", "name", "update", "state_dict", "refresh",
                        "batch_score", "description"],
                       rows, title="Registered pipeline components"))
    return 0


def _cmd_spec(args) -> int:
    from repro.eval.algorithms import arm_spec
    text = arm_spec(args.arm, seed=args.seed, dim=args.dim, strict=False).to_json()
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_train(args) -> int:
    from repro.pipeline import build_pipeline
    from repro.serve import save_checkpoint
    if bool(args.registry) != bool(args.tenant):
        print("error: --registry and --tenant go together", file=sys.stderr)
        return 2
    if not args.out and not args.registry:
        print("error: pass --out DIR or --registry DIR --tenant ID", file=sys.stderr)
        return 2
    spec = _load_spec(args)
    records = _training_records(args)
    if args.registry:
        # Provision through a real fleet rather than re-implementing its
        # checkpoint shape: the tenant gets the identical manifest — spec
        # embedded, training records pinned as the reservoir anchor — so
        # it is immediately `maintain`-able.
        from repro.serve import GeofenceFleet
        with GeofenceFleet(args.registry, capacity=1) as fleet:
            pipeline = fleet.provision(args.tenant, records, spec=spec)
        print(f"fitted {spec.describe()} on {len(records)} records")
        print(f"tenant {args.tenant!r} saved under {args.registry}")
    else:
        pipeline = build_pipeline(spec)
        pipeline.fit(records)
        print(f"fitted {spec.describe()} on {len(records)} records")
    if args.out:
        path = save_checkpoint(pipeline, args.out)
        print(f"checkpoint written to {path}")
    return 0


def _cmd_eval(args) -> int:
    from repro.eval import ALGORITHM_NAMES, evaluate_streaming, make_algorithm
    from repro.eval.reporting import format_table
    if args.list:
        print("\n".join(ALGORITHM_NAMES))
        return 0
    names = list(ALGORITHM_NAMES) if args.arms.strip().lower() == "all" \
        else [a.strip() for a in args.arms.split(",") if a.strip()]
    unknown = [n for n in names if n not in ALGORITHM_NAMES]
    if unknown:
        print(f"error: unknown arm(s) {unknown}; known: {', '.join(ALGORITHM_NAMES)}",
              file=sys.stderr)
        return 2
    gem_config = _quick_gem_config() if args.quick else None
    dataset = _user_dataset(args.user, quick=args.quick)
    rows, payload = [], {}
    for name in names:
        model = make_algorithm(name, seed=args.seed,
                               dim=_arm_dim(name, args.dim, args.quick),
                               gem_config=gem_config)
        result = evaluate_streaming(model, dataset)
        m = result.metrics
        rows.append([name, f"{m.f_in:.3f}", f"{m.f_out:.3f}",
                     f"{result.fit_seconds:.2f}", f"{result.stream_seconds:.2f}"])
        payload[name] = {"p_in": m.p_in, "r_in": m.r_in, "f_in": m.f_in,
                         "p_out": m.p_out, "r_out": m.r_out, "f_out": m.f_out,
                         "fit_seconds": result.fit_seconds,
                         "stream_seconds": result.stream_seconds}
    print(format_table(["arm", "F(in)", "F(out)", "fit s", "stream s"],
                       rows, title=f"user-{args.user} streaming evaluation"))
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"metrics written to {args.json_out}")
    return 0


def _cmd_drift(args) -> int:
    import tempfile

    from repro.datasets.users import user_scenario
    from repro.eval.algorithms import arm_spec
    from repro.eval.drift import DriftHarness
    from repro.eval.reporting import format_table
    from repro.pipeline import ComponentSpec, DriftSpec, PipelineSpec, build_pipeline
    from repro.rf.dynamics import home_ap_ids

    sessions, session_s, train_s = args.sessions, args.session_s, args.train_s

    if args.spec:
        spec = PipelineSpec.from_json(Path(args.spec).read_text())
    else:
        # --quick shortens GNN training but keeps dim 32 (and the world
        # untouched): thin embeddings and thin streams both visibly slow
        # post-churn recovery, which is the subject here.
        gem_config = None
        if args.quick:
            from repro.core.config import GEMConfig
            from repro.embedding.bisage import BiSAGEConfig
            gem_config = GEMConfig(bisage=BiSAGEConfig(epochs=2))
        spec = arm_spec(args.arm, seed=args.seed, dim=32,
                        gem_config=gem_config, strict=False)
    if args.maintain and not spec.supports_refresh():
        print(f"error: --maintain needs a refresh-capable arm, but "
              f"{spec.describe()} is not (see `components` for capabilities)",
              file=sys.stderr)
        return 2
    scenario = user_scenario(args.user)
    drift = spec.drift
    if drift is None:
        epochs = args.epochs
        shock_epoch = args.shock_epoch if args.shock_epoch is not None \
            else max(1, epochs // 2 - 1)
        if not 1 <= shock_epoch < epochs:
            print(f"error: --shock-epoch must be in 1..{epochs - 1}, got {shock_epoch}",
                  file=sys.stderr)
            return 2
        # The user's own AP survives churn; the ambient neighbourhood does not.
        protect = list(home_ap_ids(scenario))
        drift = DriftSpec(num_epochs=epochs, seed=args.seed, schedules=(
            ComponentSpec("ap-churn", {"rate": args.churn, "protect": protect}),
            ComponentSpec("tx-power-drift", {}),
            ComponentSpec("device-gain-drift", {}),
            ComponentSpec("churn-shock", {"epoch": shock_epoch,
                                          "fraction": args.shock_fraction,
                                          "protect": protect}),
        ))
    else:
        # The spec's drift block is the whole workload: the CLI's epoch
        # and shock flags do not apply, and a workload without a
        # churn-shock schedule has no time-to-recovery to report.
        shock_epoch = next((entry.params.get("epoch") for entry in drift.schedules
                            if entry.name == "churn-shock"), None)
    harness = DriftHarness(drift.build_timeline(scenario), seed=args.seed,
                           train_duration_s=train_s, sessions_per_epoch=sessions,
                           session_duration_s=session_s)

    runs = [harness.run(build_pipeline(spec), label="online", online=True)]
    if not args.no_baseline:
        try:
            runs.append(harness.run(build_pipeline(spec), label="static", online=False))
        except TypeError as error:
            print(f"note: skipping static baseline: {error}", file=sys.stderr)
    if args.fleet:
        from repro.serve import GeofenceFleet
        with tempfile.TemporaryDirectory() as root:
            with GeofenceFleet(root, capacity=1) as fleet:
                fleet.provision("drift-tenant", harness.training_records(), spec=spec)
                runs.append(harness.run_fleet(fleet, "drift-tenant", label="fleet"))
    if args.maintain:
        from repro.serve import FleetController, GeofenceFleet, MaintenancePolicy
        policy = MaintenancePolicy(check_every=args.maintain,
                                   refresh_every=args.maintain)
        with tempfile.TemporaryDirectory() as root:
            with GeofenceFleet(root, capacity=1) as fleet:
                fleet.provision("maintained", harness.training_records(), spec=spec)
                controller = FleetController(fleet, policy)
                runs.append(harness.run_fleet(fleet, "maintained", label="refresh",
                                              controller=controller))

    headers = ["epoch", "records"]
    for run in runs:
        headers += [f"AUC {run.label}", f"FPR {run.label}"]
    headers.append("events")
    rows = []
    for i, base in enumerate(runs[0].epochs):
        row = [str(base.epoch), str(base.num_records)]
        for run in runs:
            m = run.epochs[i]
            row.append("--" if m.auc is None else f"{m.auc:.3f}")
            row.append(f"{m.fpr:.2f}")
        events = "; ".join(base.events)
        row.append(events[:44] or "-")
        rows.append(row)
    shock_note = f", shock at epoch {shock_epoch}" if shock_epoch is not None else ""
    print(format_table(headers, rows,
                       title=f"user-{args.user} drift: {spec.describe()}{shock_note}"))
    recovery = {}
    if shock_epoch is not None:
        recovery = {run.label: run.recovery_after(shock_epoch) for run in runs}
        for label, value in recovery.items():
            text = "never within this horizon" if value is None else f"{value} epoch(s)"
            print(f"time-to-recovery ({label}): {text}")
    if args.json_out:
        payload = {"user": args.user, "seed": args.seed, "shock_epoch": shock_epoch,
                   "pipeline": spec.to_dict(), "workload": drift.to_dict(),
                   "runs": [run.to_dict() for run in runs],
                   "recovery_epochs": recovery}
        Path(args.json_out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"trajectories written to {args.json_out}")
    return 0


class _GracefulShutdown:
    """SIGTERM/SIGINT -> a should-stop flag instead of a traceback.

    The serving subcommands check the flag between events, so a
    terminated replay still runs its full teardown: the scheduler stops,
    dirty tenants flush, and the final metrics snapshot is written.
    Calling the instance reads the flag (it is the ``should_stop``
    callable :func:`_replay_events` takes); handlers are restored on
    exit, and a second signal falls through to the previous handler so
    a wedged teardown can still be interrupted.
    """

    def __init__(self):
        self.signal_name: str | None = None
        self._previous: dict[int, object] = {}

    def __call__(self) -> bool:
        return self.signal_name is not None

    def _handle(self, signum, frame) -> None:
        import signal
        self.signal_name = signal.Signals(signum).name
        # Restore the previous disposition: one signal requests a
        # graceful stop, a second one escalates (default: terminate).
        for number, previous in self._previous.items():
            signal.signal(number, previous)

    def __enter__(self) -> "_GracefulShutdown":
        import signal
        for number in (signal.SIGTERM, signal.SIGINT):
            self._previous[number] = signal.signal(number, self._handle)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        import signal
        if self.signal_name is None:
            for number, previous in self._previous.items():
                signal.signal(number, previous)


def _replay_events(observe, events_path: Path, out_handle,
                   should_stop=None) -> int:
    """Stream JSONL events through ``observe``; returns events served.

    Raises ValueError with the offending line number on a malformed
    event, so callers surface one actionable error line.  A truthy
    ``should_stop()`` between events ends the replay early (graceful
    shutdown), leaving teardown to the caller.
    """
    from repro.core.io import record_from_dict
    served = 0
    with events_path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            if should_stop is not None and should_stop():
                break
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
                tenant = str(event["tenant"])
                record = record_from_dict(event)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                raise ValueError(f"{events_path}:{line_number}: bad event: {error}") \
                    from error
            decision = observe(tenant, record)
            out_handle.write(json.dumps({
                "tenant": tenant,
                "inside": decision.inside,
                # +inf means "could not be embedded"; JSON has no inf.
                "score": decision.score if math.isfinite(decision.score) else None,
                "confident": decision.confident,
            }) + "\n")
            served += 1
    return served


def _cmd_serve(args) -> int:
    from repro.serve import GeofenceFleet
    events_path = Path(args.events)
    if not events_path.is_file():
        print(f"error: no such events file: {events_path}", file=sys.stderr)
        return 2
    out_handle = open(args.out, "w") if args.out else sys.stdout
    try:
        with GeofenceFleet(args.registry, capacity=args.capacity) as fleet:
            served = _replay_events(fleet.observe, events_path, out_handle)
        print(f"served {served} events from {events_path}", file=sys.stderr)
    finally:
        if args.out:
            out_handle.close()
    return 0


def _cmd_runtime(args) -> int:
    from repro.serve import MaintenancePolicy, ServingRuntime
    events_path = Path(args.events)
    if not events_path.is_file():
        print(f"error: no such events file: {events_path}", file=sys.stderr)
        return 2
    policy = None
    if args.policy:
        policy = MaintenancePolicy.from_json(Path(args.policy).read_text())
    interval = args.interval if args.interval and args.interval > 0 else None
    out_handle = open(args.out, "w") if args.out else sys.stdout
    try:
        runtime = ServingRuntime(args.registry, num_shards=args.shards,
                                 capacity=args.capacity, policy=policy,
                                 incremental=not args.no_incremental,
                                 scheduler_interval=interval,
                                 sweep_every=args.sweep_every)
        dumper = None
        if args.metrics_out:
            from repro.obs import MetricsDumper
            dumper = MetricsDumper(runtime.metrics, args.metrics_out,
                                   interval=args.metrics_interval)
        with _GracefulShutdown() as shutdown, runtime:
            if dumper is not None:
                dumper.start()
            try:
                served = _replay_events(runtime.observe, events_path,
                                        out_handle, should_stop=shutdown)
                if runtime.scheduler is None:
                    # Serial mode: run the maintenance the daemon would have.
                    runtime.maintain()
            finally:
                if dumper is not None:
                    # Stop inside the runtime context: the final snapshot
                    # reads live shards, then close() can tear them down.
                    dumper.stop()
        # Report after close(): the final drain and flush write-backs
        # have happened, so the counters describe the whole replay.
        stats = runtime.stats()
        actions = runtime.maintenance_actions()
        if shutdown():
            print(f"{shutdown.signal_name}: stopped after {served} event(s); "
                  "scheduler drained, dirty tenants flushed", file=sys.stderr)
        print(f"served {served} events from {events_path} across "
              f"{args.shards} shard(s)", file=sys.stderr)
        totals = stats["totals"]
        print(f"maintenance: {len(actions)} action(s); "
              f"refreshes={totals['refreshes']} reprovisions={totals['reprovisions']} "
              f"full saves={totals['saves']} delta saves={totals['delta_saves']}",
              file=sys.stderr)
        if stats["scheduler"] is not None:
            sched = stats["scheduler"]
            print(f"scheduler: {sched['ticks']} tick(s), "
                  f"{sched['decisions_drained']} decision(s) drained, "
                  f"{sched['errors']} error(s)", file=sys.stderr)
        if args.metrics_out:
            print(f"metrics snapshots appended to {args.metrics_out}",
                  file=sys.stderr)
    finally:
        if args.out:
            out_handle.close()
    return 0


def _quick_cluster_world(root: Path, router) -> Path:
    """Provision a tiny synthetic world through ``router``; returns the
    generated events file (two tenants, interleaved test sessions)."""
    from repro.core.io import record_to_dict
    from repro.eval.algorithms import arm_spec
    spec = arm_spec("GEM", seed=0, dim=16, gem_config=_quick_gem_config(),
                    strict=False)
    dataset = _user_dataset(1, quick=True)
    # These two hash to different workers of a 2-worker cluster
    # (shard_index: smoke-a -> 0, smoke-d -> 1), so the smoke run
    # exercises real fan-out, not one busy worker and one idle.
    tenants = ["smoke-a", "smoke-d"]
    for tenant in tenants:
        router.provision(tenant, dataset.train, spec=spec)
    events_path = root / "events.jsonl"
    with events_path.open("w") as handle:
        for position, labeled in enumerate(dataset.test):
            event = {"tenant": tenants[position % len(tenants)],
                     **record_to_dict(labeled.record)}
            handle.write(json.dumps(event) + "\n")
    return events_path


def _cmd_cluster(args) -> int:
    import tempfile

    from repro.serve import MaintenancePolicy
    from repro.serve.cluster import Router, spawn_local_worker

    if not args.quick and not (args.registry and args.events):
        print("error: pass --registry and --events, or --quick for a "
              "self-contained smoke run", file=sys.stderr)
        return 2
    if args.promote and not args.standby:
        print("error: --promote needs --standby", file=sys.stderr)
        return 2
    policy = MaintenancePolicy.from_json(Path(args.policy).read_text()) \
        if args.policy else None
    out_handle = open(args.out, "w") if args.out else sys.stdout
    scratch = tempfile.TemporaryDirectory() if args.quick else None
    try:
        root = Path(scratch.name) if scratch else None
        registry = args.registry or str(root / "registry")
        router = Router(registry, num_workers=args.workers,
                        capacity=args.capacity,
                        incremental=not args.no_incremental,
                        policy=policy, standby=args.standby,
                        timeout=args.timeout,
                        launcher=spawn_local_worker if args.local else None,
                        worker_shards=args.worker_shards)
        dumper = None
        if args.metrics_out:
            from repro.obs import MetricsDumper
            dumper = MetricsDumper(router.metrics, args.metrics_out,
                                   interval=args.metrics_interval)
        with _GracefulShutdown() as shutdown, router:
            if dumper is not None:
                dumper.start()
            try:
                events_path = _quick_cluster_world(root, router) if args.quick \
                    else Path(args.events)
                if not events_path.is_file():
                    print(f"error: no such events file: {events_path}",
                          file=sys.stderr)
                    return 2
                served = _replay_events(router.observe, events_path,
                                        out_handle, should_stop=shutdown)
                router.maintain()
                flushed = router.flush()
                cluster_stats = router.stats()
                worker_stats = router.worker_stats()
                health = router.health_report() if args.health else None
                replication = router.replication_stats()
                report = router.promote() if args.promote else None
            finally:
                if dumper is not None:
                    dumper.stop()
        if shutdown():
            print(f"{shutdown.signal_name}: stopped after {served} event(s); "
                  "workers flushed and shut down", file=sys.stderr)
        print(f"served {served} events across {args.workers} worker(s); "
              f"flushed {flushed} tenant(s)", file=sys.stderr)
        totals = cluster_stats["totals"]
        print(f"cluster totals: {cluster_stats['requests']} request(s), "
              f"{totals['observations']} observation(s), "
              f"{cluster_stats['resident']} resident tenant(s), "
              f"{cluster_stats['busy_seconds']:.2f}s busy across "
              f"{cluster_stats['live_workers']} live worker(s)",
              file=sys.stderr)
        for stats in worker_stats:
            print(f"worker {stats['worker']} (pid {stats['pid']}): "
                  f"{stats['requests']} request(s), "
                  f"{stats['busy_seconds']:.2f}s busy", file=sys.stderr)
        if health is not None:
            print(_format_cluster_health(health), file=sys.stderr)
        if replication is not None:
            print(f"replication: {replication['applied']} applied, "
                  f"{replication['skipped']} skipped, "
                  f"{replication['rejected']} rejected; "
                  f"lag {replication['last_lag_seconds'] * 1e3:.1f} ms",
                  file=sys.stderr)
        if report is not None:
            print(f"promoted standby {args.standby}: {report.tenants} "
                  f"tenant(s), {report.compacted} compacted, "
                  f"{report.seconds * 1e3:.1f} ms failover", file=sys.stderr)
        if args.metrics_out:
            print(f"metrics snapshots appended to {args.metrics_out}",
                  file=sys.stderr)
    finally:
        if args.out:
            out_handle.close()
        if scratch is not None:
            scratch.cleanup()
    return 0


def _format_cluster_health(report: dict) -> str:
    """The ``--health`` table: folded probes, then per-worker rows."""
    from repro.eval.reporting import format_table
    rows = [["cluster" if name != "replication_lag" else "router",
             name, probe.get("status", "?"), f"{probe.get('value', 0):.6g}",
             str(probe.get("detail", ""))[:44] or "-"]
            for name, probe in sorted(report.get("probes", {}).items())]
    for worker in sorted(report.get("workers", {})):
        for name, probe in sorted(report["workers"][worker].items()):
            rows.append([worker, name, probe.get("status", "?"),
                         f"{probe.get('value', 0):.6g}",
                         str(probe.get("detail", ""))[:44] or "-"])
    return format_table(
        ["worker", "probe", "status", "value", "detail"], rows,
        title=f"Cluster health: {report.get('status', '?')}")


def _load_metrics_snapshot(path: Path, line: int) -> dict:
    """One metrics snapshot from a JSON or JSONL file.

    ``line`` is 1-based; 0 or negative indexes from the end (0 = last),
    matching how --metrics-out appends snapshots over time.
    """
    lines = [text for text in path.read_text().splitlines() if text.strip()]
    if not lines:
        raise ValueError(f"{path}: no metrics snapshots (empty file)")
    index = line - 1 if line > 0 else len(lines) - 1 + line
    if not 0 <= index < len(lines):
        raise ValueError(f"{path}: --line {line} out of range "
                         f"(file has {len(lines)} snapshot(s))")
    try:
        snapshot = json.loads(lines[index])
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: snapshot {index + 1} is not JSON: {error}") \
            from error
    if not isinstance(snapshot, dict):
        raise ValueError(f"{path}: snapshot {index + 1} is not a JSON object")
    return snapshot


def _summarise_metrics(snapshot: dict) -> str:
    from repro.eval.reporting import format_table
    from repro.obs import histogram_percentiles
    families = snapshot.get("families", snapshot)
    sections = []
    latency_rows, counter_rows = [], []
    for name in sorted(families):
        entry = families[name]
        if not isinstance(entry, dict) or "type" not in entry:
            continue
        for series in entry.get("series", ()):
            label_text = ",".join(f"{k}={v}" for k, v in
                                  sorted(series.get("labels", {}).items()))
            if entry["type"] == "histogram":
                p = histogram_percentiles(series)
                latency_rows.append([
                    name, label_text or "-", str(series["count"]),
                    *(("--" if p[q] is None else f"{p[q] * 1e3:.2f}")
                      for q in ("p50", "p90", "p99"))])
            else:
                value = series["value"]
                text = f"{value:.6g}" if isinstance(value, float) else str(value)
                counter_rows.append([name, entry["type"], label_text or "-", text])
    if latency_rows:
        sections.append(format_table(
            ["histogram", "labels", "count", "p50 ms", "p90 ms", "p99 ms"],
            latency_rows, title="Latency histograms"))
    if counter_rows:
        sections.append(format_table(["metric", "type", "labels", "value"],
                                     counter_rows, title="Counters and gauges"))
    health = snapshot.get("health")
    if isinstance(health, dict) and health:
        rows = [[name, probe.get("status", "?"), f"{probe.get('value', 0):.6g}",
                 f"{probe.get('warn_at', 0):.6g}",
                 f"{probe.get('critical_at', 0):.6g}",
                 str(probe.get("detail", ""))[:44] or "-"]
                for name, probe in sorted(health.items())]
        sections.append(format_table(
            ["probe", "status", "value", "warn", "critical", "detail"],
            rows, title="Health probes"))
    traces = snapshot.get("traces")
    if isinstance(traces, dict) and traces.get("slow_traces"):
        rows: list[list[str]] = []

        def _walk(span: dict, depth: int) -> None:
            # Indented tree rows: a cluster snapshot shows the worker
            # subtree stitched under the router span that caused it.
            rows.append([("  " * depth) + str(span.get("name", "?")),
                         f"{(span.get('seconds') or 0.0) * 1e3:.2f}",
                         ",".join(f"{k}={v}" for k, v in
                                  sorted(span.get("attrs", {}).items()))[:44]
                         or "-"])
            for child in span.get("children", ()):
                _walk(child, depth + 1)

        for trace in traces["slow_traces"]:
            _walk(trace, 0)
        sections.append(format_table(
            ["span", "ms", "attrs"], rows,
            title=f"Slow traces (threshold "
                  f"{traces.get('slow_threshold', 0.0):.3g}s)"))
    if not sections:
        return "(snapshot holds no metric families)"
    return "\n\n".join(sections)


def _summarise_diff(diff: dict) -> str:
    from repro.eval.reporting import format_table
    rows = []
    for name in sorted(diff.get("families", {})):
        family = diff["families"][name]
        for series in family.get("series", ()):
            delta = series.get("delta", 0)
            value = series.get("value")
            if not delta and value is None:
                continue              # unchanged counter/histogram: noise
            rate = series.get("rate")
            label_text = ",".join(f"{k}={v}" for k, v in
                                  sorted(series.get("labels", {}).items()))
            rows.append([name, family.get("type", "?"), label_text or "-",
                         f"{delta:.6g}",
                         "--" if rate is None else f"{rate:.6g}",
                         "--" if value is None else f"{value:.6g}"])
    if not rows:
        return "(no changes between the snapshots)"
    interval = diff.get("interval_seconds")
    title = "Snapshot deltas" if not interval \
        else f"Snapshot deltas over {interval:.2f}s"
    return format_table(["metric", "type", "labels", "delta", "rate/s",
                         "value"], rows, title=title)


def _cmd_obs(args) -> int:
    from repro.obs import diff_snapshots, render_prometheus, snapshot_to_json
    paths = [Path(p) for p in args.path]
    for path in paths:
        if not path.is_file():
            print(f"error: no such metrics file: {path}", file=sys.stderr)
            return 2
    if len(paths) > 2 or (len(paths) == 2 and not args.diff):
        print("error: pass one snapshot file, or two with --diff",
              file=sys.stderr)
        return 2
    if args.diff:
        if args.format == "prometheus":
            print("error: --diff has no Prometheus exposition form "
                  "(rates are what a real scraper computes server-side)",
                  file=sys.stderr)
            return 2
        if len(paths) == 2:
            earlier = _load_metrics_snapshot(paths[0], args.line)
            later = _load_metrics_snapshot(paths[1], args.line)
        else:
            # One JSONL trail: first snapshot vs the --line selection.
            earlier = _load_metrics_snapshot(paths[0], 1)
            later = _load_metrics_snapshot(paths[0], args.line)
        diff = diff_snapshots(earlier, later)
        text = snapshot_to_json(diff) + "\n" if args.format == "json" \
            else _summarise_diff(diff) + "\n"
    else:
        snapshot = _load_metrics_snapshot(paths[0], args.line)
        if args.format == "prometheus":
            text = render_prometheus(snapshot)
        elif args.format == "json":
            text = snapshot_to_json(snapshot) + "\n"
        else:
            text = _summarise_metrics(snapshot) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_maintain(args) -> int:
    from repro.eval.reporting import format_table
    from repro.serve import (QUARANTINE_METADATA_KEY, RESERVOIR_METADATA_KEY,
                             GeofenceFleet, ModelRegistry)
    from repro.serve.quarantine import DEFAULT_QUARANTINE_SIZE

    registry = ModelRegistry(args.registry)
    known = registry.tenants()
    if args.tenants.strip().lower() == "all":
        targets = known
    else:
        targets = [t.strip() for t in args.tenants.split(",") if t.strip()]
        missing = [t for t in targets if t not in known]
        if missing:
            print(f"error: no checkpoint for tenant(s) {missing} under "
                  f"{registry.root}", file=sys.stderr)
            return 2
    if not targets:
        print(f"error: no tenants under {registry.root}", file=sys.stderr)
        return 2

    rows, payload = [], {}
    if args.dry_run:
        from repro.serve.checkpoint import load_state, spec_from_manifest
        for tenant_id in targets:
            # load_state + spec_from_manifest instead of reading the
            # manifest key directly: format-1 checkpoints (no embedded
            # spec) migrate through the same path the loader uses.
            state, manifest = load_state(registry.path_for(tenant_id))
            spec = spec_from_manifest(manifest, state)
            reservoir = manifest.get("metadata", {}).get(RESERVOIR_METADATA_KEY) or {}
            size = len(reservoir.get("anchor", ())) + len(reservoir.get("recent", ()))
            quarantine = manifest.get("metadata", {}).get(QUARANTINE_METADATA_KEY) or {}
            qsize = len(quarantine.get("records", ()))
            capable = spec.supports_refresh()
            rows.append([tenant_id, spec.describe(),
                         "yes" if capable else "no", str(size), str(qsize)])
            payload[tenant_id] = {"arm": spec.describe(),
                                  "supports_refresh": capable,
                                  "reservoir": size,
                                  "quarantine": qsize}
        print(format_table(["tenant", "arm", "refresh?", "reservoir", "quarantine"],
                           rows, title=f"maintain --dry-run over {registry.root}"))
    else:
        import time as _time
        # The recover action needs a quarantine-armed fleet so the
        # persisted buffer is restored from checkpoint metadata (a
        # quarantine_size=0 fleet carries the metadata forward untouched
        # but never materialises the buffer).
        quarantine_size = DEFAULT_QUARANTINE_SIZE if args.action == "recover" else 0
        with GeofenceFleet(registry, capacity=1,
                           quarantine_size=quarantine_size) as fleet:
            for tenant_id in targets:
                start = _time.perf_counter()
                try:
                    if args.action == "refresh":
                        absorbed = fleet.refresh(tenant_id)
                        outcome = f"refit on {absorbed} inlier(s)"
                    elif args.action == "recover":
                        model = fleet.reprovision_from_quarantine(
                            tenant_id, max_fpr=args.max_fpr)
                        outcome = (f"recovered {type(model).__name__} from "
                                   "quarantine")
                    else:
                        model = fleet.reprovision(tenant_id)
                        outcome = f"refitted {type(model).__name__} from reservoir"
                    status = args.action
                except (TypeError, ValueError) as error:
                    status, outcome = "skipped", str(error)
                seconds = _time.perf_counter() - start
                # Write back (and free the slot) before the next tenant.
                fleet.evict(tenant_id)
                rows.append([tenant_id, status, f"{seconds:.2f}", outcome[:60]])
                payload[tenant_id] = {"status": status, "seconds": seconds,
                                      "outcome": outcome}
        print(format_table(["tenant", "status", "seconds", "outcome"], rows,
                           title=f"maintain --action {args.action} over {registry.root}"))
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"report written to {args.json_out}")
    return 0


_COMMANDS = {
    "components": _cmd_components,
    "spec": _cmd_spec,
    "train": _cmd_train,
    "eval": _cmd_eval,
    "serve": _cmd_serve,
    "runtime": _cmd_runtime,
    "serve-daemon": _cmd_runtime,
    "cluster": _cmd_cluster,
    "maintain": _cmd_maintain,
    "drift": _cmd_drift,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.serve import CheckpointError
    try:
        return _COMMANDS[args.command](args)
    except (CheckpointError, OSError, ValueError) as error:
        # Expected operator mistakes (unknown arm, missing file, torn or
        # absent checkpoint, bad spec JSON): one line, no traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
