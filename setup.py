"""Legacy setup shim.

The offline environment has setuptools but no ``wheel`` package, so the
PEP 517 editable-install path (which needs to build a wheel) fails.
Keeping a setup.py lets ``pip install -e . --no-build-isolation`` use
the classic ``setup.py develop`` route.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
