"""Fig. 6 — visualise BiSAGE embeddings with the from-scratch t-SNE.

Collects records in one room, trains BiSAGE, embeds both record nodes
and MAC nodes into 2-D and prints an ASCII scatter: record nodes and MAC
nodes should form separated clusters (the paper's Fig. 6).

Run:  python examples/embedding_visualization.py
"""

import numpy as np

from repro.datasets import user_dataset
from repro.embedding import BiSAGE, BiSAGEConfig
from repro.graph import build_graph
from repro.viz import tsne


def ascii_scatter(points: np.ndarray, labels: list[str], width: int = 70,
                  height: int = 24) -> str:
    x0, x1 = points[:, 0].min(), points[:, 0].max()
    y0, y1 = points[:, 1].min(), points[:, 1].max()
    grid = [[" "] * width for _ in range(height)]
    for (x, y), label in zip(points, labels):
        col = int((x - x0) / (x1 - x0 + 1e-9) * (width - 1))
        row = int((y - y0) / (y1 - y0 + 1e-9) * (height - 1))
        grid[row][col] = label
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    data = user_dataset(3, test_sessions=2, session_duration_s=40)
    records = data.train[:120]
    graph = build_graph(records)
    bisage = BiSAGE(BiSAGEConfig(epochs=5, seed=0)).fit(graph)

    record_embeddings = bisage.record_embeddings()
    mac_embeddings = bisage.mac_embeddings()
    combined = np.vstack([record_embeddings, mac_embeddings])
    labels = ["." for _ in range(len(record_embeddings))] + \
             ["#" for _ in range(len(mac_embeddings))]

    projected = tsne(combined, dim=2, perplexity=15, iterations=300, seed=0)
    print("t-SNE of BiSAGE embeddings  (. = signal record node, # = MAC node)\n")
    print(ascii_scatter(projected, labels))

    # Quantify the type separation the paper's Fig. 6 shows.
    from_records = projected[: len(record_embeddings)]
    from_macs = projected[len(record_embeddings):]
    within = np.linalg.norm(from_records - from_records.mean(0), axis=1).mean()
    between = np.linalg.norm(from_records.mean(0) - from_macs.mean(0))
    print(f"\nrecord-cluster radius {within:.1f} vs record/MAC centroid distance {between:.1f}")


if __name__ == "__main__":
    main()
