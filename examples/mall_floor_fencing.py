"""Floor-level geofencing in a five-storey shopping mall (Sec. V-E).

Geofences the middle floor of a mall — e.g. keeping a freight trolley or
a child's tracker on the right level — and compares GEM against the two
end-to-end baselines on the same stream, reproducing the Table IV
experiment at example scale.

Run:  python examples/mall_floor_fencing.py
"""

from repro.datasets import mall_dataset
from repro.eval import evaluate_streaming, make_algorithm


def main() -> None:
    # The Table-IV bench scale; smaller streams under-train GEM's
    # self-update and flatter the absolute numbers.
    data = mall_dataset(seed=0, train_records=800, test_records_per_floor=120)
    floor = data.meta["geofence_floor"]
    print(f"mall: geofencing floor {floor}; train={len(data.train)} records, "
          f"test={len(data.test)} records across 5 floors, "
          f"{data.num_macs_seen} MACs visible from the geofenced floor\n")

    print(f"{'algorithm':16s} {'F_in':>6s} {'F_out':>6s} {'fit':>6s} {'stream':>7s}")
    for name in ("GEM", "SignatureHome", "INOA"):
        result = evaluate_streaming(make_algorithm(name, seed=0), data)
        m = result.metrics
        print(f"{name:16s} {m.f_in:6.3f} {m.f_out:6.3f} "
              f"{result.fit_seconds:5.1f}s {result.stream_seconds:6.1f}s")

    # Per-floor error profile for GEM: which floors get confused?
    gem = make_algorithm("GEM", seed=0)
    gem.fit(data.train)
    per_floor: dict[int, list[bool]] = {}
    for item in data.test:
        decision = gem.observe(item.record)
        per_floor.setdefault(item.meta["floor"], []).append(
            decision.inside == item.inside)
    print("\nGEM accuracy by floor:")
    for f in sorted(per_floor):
        accuracy = sum(per_floor[f]) / len(per_floor[f])
        marker = " <- geofenced" if f == floor else ""
        print(f"  floor {f}: {accuracy:.3f}{marker}")


if __name__ == "__main__":
    main()
