"""Quickstart: geofence a simulated apartment with GEM.

Trains on a few minutes of perimeter-walk scans, then streams test
records through the online inference loop (Algorithm 2), printing the
decision for a handful of them and the final accuracy.  Finishes by
checkpointing the trained (and self-updated) model to disk and proving
the reloaded copy scores identically — the persistence layer the
multi-tenant fleet server (``repro.serve``) is built on.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import GEM, GEMConfig
from repro.datasets import user_dataset
from repro.eval.metrics import metrics_from_pairs
from repro.serve import ModelRegistry


def main() -> None:
    # One of the ten Table II homes: ~50 m² apartment, ~30 ambient MACs.
    data = user_dataset(3, test_sessions=4, session_duration_s=60)
    print(f"training records: {len(data.train)}   "
          f"test records: {len(data.test)}   "
          f"ambient MACs: {data.num_macs_seen}")

    gem = GEM(GEMConfig())
    gem.fit(data.train)
    print(f"bipartite graph: {gem.graph.num_records} records x "
          f"{gem.graph.num_macs} MACs, {gem.graph.num_edges} edges")

    pairs = []
    for i, item in enumerate(data.test):
        decision = gem.observe(item.record)
        pairs.append((item.inside, decision.inside))
        if i % 60 == 0:
            status = "IN " if decision.inside else "OUT"
            truth = "inside" if item.inside else "outside"
            print(f"t={item.record.timestamp:7.0f}s  prediction={status}  "
                  f"score={decision.score:6.3f}  truth={truth}"
                  + ("  [model updated]" if decision.updated else ""))

    metrics = metrics_from_pairs(pairs)
    print(f"\nF_in={metrics.f_in:.3f}  F_out={metrics.f_out:.3f}  "
          f"(P_in={metrics.p_in:.2f} R_in={metrics.r_in:.2f} "
          f"P_out={metrics.p_out:.2f} R_out={metrics.r_out:.2f})")

    # Persist the trained model and reload it: decisions are identical,
    # so a served tenant can be evicted and paged back in at any time.
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "models")
        registry.save("user-3", gem, metadata={"area_m2": 50})
        reloaded = registry.load("user-3")
        probe = data.test[-1].record
        assert reloaded.score(probe) == gem.score(probe)
        print(f"\ncheckpointed to registry ({registry.tenants()}) and reloaded: "
              f"score {reloaded.score(probe):.3f} matches the live model")


if __name__ == "__main__":
    main()
