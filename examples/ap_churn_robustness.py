"""AP churn robustness: routers appearing and disappearing (Fig. 9-12).

Real deployments see access points rebooted, replaced and removed.  This
example applies the paper's two-state ON-OFF Markov dynamics to a home
stream and shows GEM's accuracy as churn intensity grows, alongside the
entropy rate of the chain (the paper's explanation for where the dip is).

Run:  python examples/ap_churn_robustness.py
"""

from repro.core.records import LabeledRecord
from repro.datasets import GeofenceDataset, user_dataset
from repro.eval import evaluate_streaming, make_algorithm
from repro.rf.markov import apply_ap_onoff, markov_entropy_rate


def churned(data: GeofenceDataset, p: float, q: float) -> GeofenceDataset:
    stream = list(data.train) + [item.record for item in data.test]
    modified = apply_ap_onoff(stream, p, q, period=30, rng=9)
    train = modified[: len(data.train)]
    test = [LabeledRecord(record, item.inside, item.meta)
            for record, item in zip(modified[len(data.train):], data.test)]
    return GeofenceDataset(scenario=data.scenario, train=train, test=test)


def main() -> None:
    base = user_dataset(6, test_sessions=4, session_duration_s=70)
    print(f"world: {base.scenario.name}, {base.num_macs_seen} MACs, "
          f"{len(base.train)} train / {len(base.test)} test records\n")
    print(f"{'(p, q)':12s} {'entropy':>8s} {'F_in':>6s} {'F_out':>6s}")
    for p, q in [(0.0, 1.0), (0.1, 0.9), (0.3, 0.7), (0.5, 0.5), (0.9, 0.1)]:
        data = churned(base, p, q) if p > 0 else base
        metrics = evaluate_streaming(make_algorithm("GEM", seed=6), data).metrics
        print(f"({p:.1f}, {q:.1f})   {markov_entropy_rate(p, q):8.3f} "
              f"{metrics.f_in:6.3f} {metrics.f_out:6.3f}")
    print("\nGEM degrades gracefully even when every AP flips state with "
          "coin-toss uncertainty (p=q=0.5, the entropy-rate peak).")


if __name__ == "__main__":
    main()
