"""Elderly-care scenario: alert when a monitored person leaves home.

The paper's motivating application (Sec. I): a person with dementia
wears an IoT device; caregivers are alerted the moment the person
wanders out.  This example builds a two-storey house world, trains GEM
from a short setup walk, then simulates a day where the person moves
around the house and eventually wanders to the street — and shows the
alert latency (scans between crossing the boundary and the first OUT
decision).

Run:  python examples/elderly_care.py
"""

from repro import GEM, GEMConfig
from repro.datasets.synthetic import generate_dataset
from repro.rf.scenarios import home_scenario


def main() -> None:
    # A detached two-storey house (the hardest Table II world).
    scenario = home_scenario(area_m2=200.0, aps_inside=2, aps_near=4, aps_far=3,
                             detached=True, seed=42, name="care-home")
    data = generate_dataset(scenario, seed=7, train_duration_s=420,
                            test_sessions=6, session_duration_s=90,
                            start_outside=False)

    gem = GEM(GEMConfig())
    gem.fit(data.train)
    print(f"setup walk: {len(data.train)} scans, "
          f"{data.num_macs_seen} ambient MACs learned")

    alerts = 0
    wander_started_at = None
    alert_latency = None
    for item in data.test:
        decision = gem.observe(item.record)
        if not item.inside and wander_started_at is None:
            wander_started_at = item.record.timestamp
        if not decision.inside:
            alerts += 1
            if wander_started_at is not None and alert_latency is None:
                alert_latency = item.record.timestamp - wander_started_at
        if decision.inside and item.inside and decision.updated:
            pass  # the model quietly keeps learning the home's RF shape

    outside_records = sum(1 for item in data.test if not item.inside)
    print(f"stream: {len(data.test)} scans, {outside_records} truly outside")
    print(f"alerts raised: {alerts}")
    if alert_latency is not None:
        print(f"first alert {alert_latency:.0f}s after the first boundary crossing "
              f"(~{alert_latency:.0f} scans at 1 Hz)")


if __name__ == "__main__":
    main()
